//! The threaded executor: one OS thread per rank, real byte movement.
//!
//! This backend plays the role of the paper's *user-level* implementation
//! running on real hardware: sends genuinely copy payload bytes through
//! memory, so a broadcast algorithm that moves fewer bytes does measurably
//! less work — which is precisely the intra-node effect the paper describes
//! ("the point-to-point operation is implemented via memory copying, which
//! [...] can be minimized in the tuned ring allgather algorithm").
//!
//! Sends are *eager*: the payload is copied into the destination mailbox and
//! the sender continues immediately. This makes the default
//! [`Communicator::sendrecv`] (send then receive) deadlock-free.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::barrier::StopBarrier;
use crate::comm::{scatter_spans, validate_spans, Communicator, IoSpan};
use crate::counters::{CounterCell, ReactorStats, TrafficStats, WorldTraffic};
use crate::error::{CommError, Result};
use crate::mailbox::Mailbox;
use crate::pool::{BufferPool, Payload, PoolStats, SharedBuf};
use crate::rank::{Rank, Tag};

/// Everything a world run produced.
#[derive(Debug)]
pub struct WorldOutcome<R> {
    /// Per-rank return values of the user closure, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank traffic statistics, indexed by rank.
    pub traffic: WorldTraffic,
    /// Final buffer-pool counters for the world's shared [`BufferPool`].
    ///
    /// After a steady-state workload, `misses` stops growing and
    /// [`PoolStats::hit_rate`] approaches 1.0 — every message rides a
    /// recycled buffer instead of a fresh heap allocation.
    pub pool: PoolStats,
    /// Wall-clock duration of the whole run (spawn to last join).
    pub elapsed: Duration,
    /// Reactor introspection counters ([`ReactorStats`]); all zeros here —
    /// only the discrete-event executor has a reactor to introspect.
    pub reactor: ReactorStats,
}

struct Shared {
    mailboxes: Vec<Mailbox>,
    barrier: StopBarrier,
    pool: Arc<BufferPool>,
    start: Instant,
    /// Per-rank "left the world for good" flags, set when a rank's closure
    /// returns. A peer blocked receiving from an exited rank can never be
    /// satisfied (messages sent before the exit are still drained first), so
    /// it is failed with [`CommError::PeerFailed`] instead of hanging.
    exited: Vec<AtomicBool>,
}

impl Shared {
    fn stop_all(&self) {
        for mb in &self.mailboxes {
            mb.stop();
        }
        self.barrier.stop();
    }

    /// Record a normal (non-panic) departure of `rank` and wake any peer
    /// blocked on it — in a receive (re-checks the exited flag via its
    /// watch) or in the world barrier (can never complete again).
    fn rank_exited(&self, rank: Rank) {
        self.exited[rank].store(true, Ordering::SeqCst);
        self.barrier.depart(rank);
        for mb in &self.mailboxes {
            mb.wake_all();
        }
    }
}

/// Entry point for threaded runs.
///
/// See [`ThreadWorld::run`].
pub struct ThreadWorld;

impl ThreadWorld {
    /// Run `f` on `n` ranks, each on its own OS thread, and gather results.
    ///
    /// If any rank panics, the world is stopped (unblocking peers with
    /// [`CommError::WorldStopped`]) and the panic is propagated to the
    /// caller once all threads have joined.
    pub fn run<R, F>(n: usize, f: F) -> WorldOutcome<R>
    where
        R: Send,
        F: Fn(&ThreadComm) -> R + Sync,
    {
        assert!(n >= 1, "world needs at least one rank");
        let shared = Arc::new(Shared {
            mailboxes: (0..n).map(|_| Mailbox::new()).collect(),
            barrier: StopBarrier::new(n),
            pool: BufferPool::new(),
            start: Instant::now(),
            exited: (0..n).map(|_| AtomicBool::new(false)).collect(),
        });

        let mut slots: Vec<Option<(R, TrafficStats)>> = (0..n).map(|_| None).collect();
        let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, slot) in slots.iter_mut().enumerate() {
                let shared = Arc::clone(&shared);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let comm = ThreadComm {
                        rank,
                        shared: Arc::clone(&shared),
                        counters: CounterCell::default(),
                    };
                    let out = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                    match out {
                        Ok(r) => {
                            *slot = Some((r, comm.counters.take()));
                            shared.rank_exited(rank);
                            None
                        }
                        Err(payload) => {
                            shared.stop_all();
                            Some(payload)
                        }
                    }
                }));
            }
            for h in handles {
                // lint: allow(panic) — a panicking rank must abort the whole world
                if let Some(payload) = h.join().expect("rank thread poisoned the scope") {
                    panicked.get_or_insert(payload);
                }
            }
        });

        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }

        let elapsed = shared.start.elapsed();
        let pool = shared.pool.stats();
        let mut results = Vec::with_capacity(n);
        let mut traffic = Vec::with_capacity(n);
        for slot in slots {
            // lint: allow(panic) — a rank panic was already re-thrown by join above
            let (r, t) = slot.expect("rank finished without result despite no panic");
            results.push(r);
            traffic.push(t);
        }
        WorldOutcome {
            results,
            traffic: WorldTraffic::new(traffic),
            pool,
            elapsed,
            reactor: ReactorStats::default(),
        }
    }
}

/// Rank-local communicator handle for the threaded backend.
///
/// One instance exists per rank and stays on that rank's thread.
pub struct ThreadComm {
    rank: Rank,
    shared: Arc<Shared>,
    counters: CounterCell,
}

impl ThreadComm {
    /// Snapshot of this rank's traffic so far (final values are returned in
    /// [`WorldOutcome::traffic`]).
    pub fn traffic(&self) -> TrafficStats {
        self.counters.snapshot()
    }

    /// Snapshot of the world-shared buffer pool's counters.
    ///
    /// All ranks share one pool, so the numbers are global. Useful for
    /// asserting steady-state behaviour mid-run (e.g. "no new allocations
    /// happened between these two barriers").
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.pool.stats()
    }

    /// Common receive path: blocking, deadline-bounded, and exited-peer-aware.
    ///
    /// The watch predicate fails the pop with [`CommError::PeerFailed`] when
    /// `src` has left the world (its closure returned) and its queued
    /// messages are exhausted — the fast failure-detection path the
    /// self-healing collectives rely on. Self-receives skip the watch: this
    /// rank is trivially alive.
    fn recv_inner(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        deadline: Option<Instant>,
    ) -> Result<usize> {
        let env = self.pop_envelope(src, tag, deadline, buf.len())?;
        buf[..env.data.len()].copy_from_slice(&env.data);
        self.counters.record_copy(env.data.len());
        self.counters.record_recv(src, env.data.len());
        Ok(env.data.len())
    }

    /// Match and pop one envelope from `src`, enforcing `capacity` against
    /// its payload length. Shared by the plain (contiguous copy-out) and
    /// scattered (per-span copy-out) receive paths.
    fn pop_envelope(
        &self,
        src: Rank,
        tag: Tag,
        deadline: Option<Instant>,
        capacity: usize,
    ) -> Result<crate::mailbox::Envelope> {
        self.check_rank(src)?;
        let shared = &self.shared;
        let me = self.rank;
        let env = shared.mailboxes[me].pop_watch(src, tag, deadline, || {
            (src != me && shared.exited[src].load(Ordering::SeqCst))
                .then_some(CommError::PeerFailed { rank: src })
        })?;
        if env.data.len() > capacity {
            return Err(CommError::Truncation { capacity, incoming: env.data.len() });
        }
        Ok(env)
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.mailboxes.len()
    }

    fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        self.counters.record_send(dest, buf.len());
        self.counters.record_copy(buf.len());
        // Rent from the shared pool instead of allocating: in steady state
        // this is a freelist pop + memcpy, with the buffer returning to the
        // pool when the receiver's copy-out drops the envelope.
        self.shared.mailboxes[dest].push(self.rank, tag, self.shared.pool.rent_copy(buf).into());
        Ok(())
    }

    fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.recv_inner(buf, src, tag, None)
    }

    fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<usize> {
        self.recv_inner(buf, src, tag, Some(Instant::now() + timeout))
    }

    fn barrier(&self) -> Result<()> {
        self.shared.barrier.wait()
    }

    fn now_ns(&self) -> u64 {
        self.shared.start.elapsed().as_nanos() as u64
    }

    fn send_vectored(&self, buf: &[u8], spans: &[IoSpan], dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        let total = validate_spans(buf.len(), spans)?;
        // One pool rental gathers every span straight out of the user
        // buffer, and one mailbox push delivers them all: the per-chunk
        // envelope/push overhead this API exists to remove.
        let env = self.shared.pool.rent_gather(total, spans.iter().map(|s| &buf[s.range()]));
        self.counters.record_copy(total);
        self.counters.record_send_vectored(dest, total, spans.len().max(1) as u64);
        self.shared.mailboxes[dest].push(self.rank, tag, env.into());
        Ok(())
    }

    fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        let total = validate_spans(buf.len(), spans)?;
        let env = self.pop_envelope(src, tag, None, total)?;
        // Scatter each segment directly out of the matched envelope — no
        // intermediate contiguous staging buffer.
        let n = scatter_spans(buf, spans, &env.data);
        self.counters.record_copy(n);
        self.counters.record_recv_vectored(src, n, spans.len().max(1) as u64);
        Ok(n)
    }

    fn make_shared(&self, data: &[u8]) -> SharedBuf {
        // One counted copy stages the user bytes into a pool rental; every
        // subsequent send_shared of (a slice of) it is a refcount bump.
        self.counters.record_copy(data.len());
        SharedBuf::new(self.shared.pool.rent_copy(data))
    }

    fn note_copy(&self, bytes: usize) {
        self.counters.record_copy(bytes);
    }

    fn send_shared(&self, buf: &SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        self.counters.record_send(dest, buf.len());
        // Zero-copy: the mailbox receives a refcount clone of the rental —
        // no bytes move until (unless) the receiver copies out.
        self.shared.mailboxes[dest].push(self.rank, tag, Payload::Shared(buf.clone()));
        Ok(())
    }

    fn recv_owned(&self, capacity: usize, src: Rank, tag: Tag) -> Result<SharedBuf> {
        let env = self.pop_envelope(src, tag, None, capacity)?;
        self.counters.record_recv(src, env.data.len());
        // Hand the matched envelope's payload to the caller as-is: the
        // receive itself performs no copy.
        Ok(env.data.into_shared())
    }

    fn sendrecv_shared(
        &self,
        sendbuf: &SharedBuf,
        dest: Rank,
        sendtag: Tag,
        recv_capacity: usize,
        src: Rank,
        recvtag: Tag,
    ) -> Result<SharedBuf> {
        // Eager sends never block, so push-then-pop is deadlock-free for
        // the same reason the default sendrecv is.
        self.send_shared(sendbuf, dest, sendtag)?;
        self.recv_owned(recv_capacity, src, recvtag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_of_one_runs() {
        let out = ThreadWorld::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier().unwrap();
            7u32
        });
        assert_eq!(out.results, vec![7]);
        assert_eq!(out.traffic.total_msgs(), 0);
    }

    #[test]
    fn pingpong_roundtrip() {
        let out = ThreadWorld::run(2, |comm| {
            let mut buf = [0u8; 4];
            if comm.rank() == 0 {
                comm.send(&[1, 2, 3, 4], 1, Tag(1)).unwrap();
                comm.recv(&mut buf, 1, Tag(2)).unwrap();
            } else {
                comm.recv(&mut buf, 0, Tag(1)).unwrap();
                comm.send(&buf, 0, Tag(2)).unwrap();
            }
            buf
        });
        assert_eq!(out.results[0], [1, 2, 3, 4]);
        assert_eq!(out.results[1], [1, 2, 3, 4]);
        assert!(out.traffic.is_balanced());
        assert_eq!(out.traffic.total_msgs(), 2);
        assert_eq!(out.traffic.total_bytes(), 8);
    }

    #[test]
    fn nonovertaking_order_per_pair() {
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100u8 {
                    comm.send(&[i], 1, Tag(0)).unwrap();
                }
                vec![]
            } else {
                let mut got = Vec::new();
                let mut buf = [0u8; 1];
                for _ in 0..100 {
                    comm.recv(&mut buf, 0, Tag(0)).unwrap();
                    got.push(buf[0]);
                }
                got
            }
        });
        assert_eq!(out.results[1], (0..100u8).collect::<Vec<_>>());
    }

    #[test]
    fn tags_demultiplex() {
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1], 1, Tag(10)).unwrap();
                comm.send(&[2], 1, Tag(20)).unwrap();
                (0, 0)
            } else {
                let mut a = [0u8; 1];
                let mut b = [0u8; 1];
                // receive in the opposite order of sending
                comm.recv(&mut a, 0, Tag(20)).unwrap();
                comm.recv(&mut b, 0, Tag(10)).unwrap();
                (a[0], b[0])
            }
        });
        assert_eq!(out.results[1], (2, 1));
    }

    #[test]
    fn sendrecv_ring_does_not_deadlock() {
        let n = 8;
        let out = ThreadWorld::run(n, |comm| {
            let right = crate::rank::ring_right(comm.rank(), comm.size());
            let left = crate::rank::ring_left(comm.rank(), comm.size());
            let sbuf = [comm.rank() as u8];
            let mut rbuf = [0u8; 1];
            comm.sendrecv(&sbuf, right, Tag(0), &mut rbuf, left, Tag(0)).unwrap();
            rbuf[0] as usize
        });
        for (rank, &got) in out.results.iter().enumerate() {
            assert_eq!(got, crate::rank::ring_left(rank, n));
        }
    }

    #[test]
    fn self_send_loops_back() {
        let out = ThreadWorld::run(1, |comm| {
            comm.send(&[9, 9], 0, Tag(3)).unwrap();
            let mut buf = [0u8; 2];
            comm.recv(&mut buf, 0, Tag(3)).unwrap();
            buf
        });
        assert_eq!(out.results[0], [9, 9]);
    }

    #[test]
    fn truncation_reported() {
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[0; 16], 1, Tag(0)).unwrap();
                Ok(0)
            } else {
                let mut small = [0u8; 4];
                comm.recv(&mut small, 0, Tag(0)).map(|_| 0)
            }
        });
        assert_eq!(out.results[1], Err(CommError::Truncation { capacity: 4, incoming: 16 }));
    }

    #[test]
    fn short_receive_into_larger_buffer_reports_true_length() {
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[5; 3], 1, Tag(0)).unwrap();
                0
            } else {
                let mut buf = [0xAAu8; 10];
                let n = comm.recv(&mut buf, 0, Tag(0)).unwrap();
                assert_eq!(&buf[..3], &[5, 5, 5]);
                assert_eq!(buf[3], 0xAA); // untouched tail
                n
            }
        });
        assert_eq!(out.results[1], 3);
    }

    #[test]
    fn invalid_rank_rejected() {
        let out = ThreadWorld::run(1, |comm| comm.send(&[], 5, Tag(0)));
        assert_eq!(out.results[0], Err(CommError::InvalidRank { rank: 5, size: 1 }));
    }

    #[test]
    fn barrier_synchronizes_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        ThreadWorld::run(6, |comm| {
            arrived.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            assert_eq!(arrived.load(Ordering::SeqCst), 6);
        });
    }

    #[test]
    fn traffic_counters_match_activity() {
        let out = ThreadWorld::run(3, |comm| {
            // each rank sends its rank+1 bytes to every other rank
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    comm.send(&vec![0u8; comm.rank() + 1], peer, Tag(0)).unwrap();
                }
            }
            let mut buf = [0u8; 8];
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    comm.recv(&mut buf, peer, Tag(0)).unwrap();
                }
            }
        });
        assert!(out.traffic.is_balanced());
        assert_eq!(out.traffic.total_msgs(), 6);
        // bytes: rank r sends 2*(r+1) bytes total: 2*1 + 2*2 + 2*3 = 12
        assert_eq!(out.traffic.total_bytes(), 12);
        assert_eq!(out.traffic.per_rank[0].msgs_sent, 2);
        assert_eq!(out.traffic.per_rank[2].bytes_sent, 6);
    }

    #[test]
    fn vectored_roundtrip_gathers_and_scatters() {
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                // Gather two non-adjacent spans (in swapped order) of a
                // patterned buffer into one envelope.
                let src: Vec<u8> = (0..16).collect();
                let spans = [IoSpan::new(12, 4), IoSpan::new(2, 3)];
                comm.send_vectored(&src, &spans, 1, Tag(0)).unwrap();
                vec![]
            } else {
                let mut dst = [0xEEu8; 10];
                let spans = [IoSpan::new(0, 4), IoSpan::new(6, 3)];
                let n = comm.recv_scattered(&mut dst, &spans, 0, Tag(0)).unwrap();
                assert_eq!(n, 7);
                dst.to_vec()
            }
        });
        // Wire payload is [12,13,14,15, 2,3,4]; receiver splits it 4 + 3.
        assert_eq!(out.results[1], vec![12, 13, 14, 15, 0xEE, 0xEE, 2, 3, 4, 0xEE]);
        // One envelope, two logical messages, seven bytes each way.
        assert!(out.traffic.is_balanced());
        assert_eq!(out.traffic.total_msgs(), 2);
        assert_eq!(out.traffic.total_envelopes(), 1);
        assert_eq!(out.traffic.total_bytes(), 7);
    }

    #[test]
    fn vectored_truncation_checked_against_span_total() {
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[0u8; 9], 1, Tag(0)).unwrap();
                Ok(0)
            } else {
                let mut dst = [0u8; 32];
                let spans = [IoSpan::new(0, 4), IoSpan::new(8, 4)];
                comm.recv_scattered(&mut dst, &spans, 0, Tag(0)).map(|_| 0)
            }
        });
        assert_eq!(out.results[1], Err(CommError::Truncation { capacity: 8, incoming: 9 }));
    }

    #[test]
    fn panic_in_one_rank_propagates_and_unblocks_peers() {
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ThreadWorld::run(3, |comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                // Peers block forever unless teardown unblocks them.
                let mut buf = [0u8; 1];
                let _ = comm.recv(&mut buf, 1, Tag(0));
            })
        }));
        assert!(res.is_err());
    }

    #[test]
    fn recv_timeout_expires_when_no_message_comes() {
        let out = ThreadWorld::run(2, |comm| {
            let mut buf = [0u8; 1];
            if comm.rank() == 0 {
                let t0 = Instant::now();
                let err =
                    comm.recv_timeout(&mut buf, 1, Tag(0), Duration::from_millis(40)).unwrap_err();
                // rank 1 is still alive (blocked in its own receive below),
                // so this must be a genuine deadline expiry, not PeerFailed.
                assert!(t0.elapsed() >= Duration::from_millis(30));
                comm.send(&[0], 1, Tag(1)).unwrap();
                err
            } else {
                // Stay alive until rank 0's deadline has expired.
                comm.recv(&mut buf, 0, Tag(1)).unwrap();
                CommError::Timeout { peer: 99 } // placeholder
            }
        });
        assert_eq!(out.results[0], CommError::Timeout { peer: 1 });
    }

    #[test]
    fn recv_timeout_delivers_message_arriving_in_time() {
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[42], 1, Tag(7)).unwrap();
                0
            } else {
                let mut buf = [0u8; 1];
                comm.recv_timeout(&mut buf, 0, Tag(7), Duration::from_secs(10)).unwrap();
                buf[0]
            }
        });
        assert_eq!(out.results[1], 42);
    }

    #[test]
    fn recv_from_exited_rank_fails_instead_of_hanging() {
        // Regression: a rank that returns early (e.g. an error path bailing
        // with `?`) used to leave peers blocked in `recv` until process
        // teardown. It must now surface as PeerFailed.
        let out = ThreadWorld::run(3, |comm| {
            if comm.rank() == 1 {
                return Ok(0); // exits immediately, sends nothing
            }
            let mut buf = [0u8; 1];
            comm.recv(&mut buf, 1, Tag(0)).map(|_| 1)
        });
        assert_eq!(out.results[0], Err(CommError::PeerFailed { rank: 1 }));
        assert_eq!(out.results[2], Err(CommError::PeerFailed { rank: 1 }));
    }

    #[test]
    fn messages_sent_before_exit_are_still_delivered() {
        // Draining semantics: data queued before the peer left must not be
        // discarded by the failure detector.
        let out = ThreadWorld::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1], 1, Tag(0)).unwrap();
                comm.send(&[2], 1, Tag(0)).unwrap();
                vec![]
            } else {
                // Let rank 0 exit first so both deliveries race its flag.
                std::thread::sleep(Duration::from_millis(20));
                let mut buf = [0u8; 1];
                let mut got = Vec::new();
                for _ in 0..2 {
                    comm.recv(&mut buf, 0, Tag(0)).unwrap();
                    got.push(buf[0]);
                }
                // ...but a third receive can never be satisfied.
                assert_eq!(
                    comm.recv(&mut buf, 0, Tag(0)).unwrap_err(),
                    CommError::PeerFailed { rank: 0 }
                );
                got
            }
        });
        assert_eq!(out.results[1], vec![1, 2]);
    }

    #[test]
    fn barrier_after_peer_exit_fails_instead_of_hanging() {
        let out = ThreadWorld::run(3, |comm| {
            if comm.rank() == 2 {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(10));
            comm.barrier()
        });
        assert_eq!(out.results[0], Err(CommError::PeerFailed { rank: 2 }));
        assert_eq!(out.results[1], Err(CommError::PeerFailed { rank: 2 }));
    }

    #[test]
    fn now_ns_is_monotone() {
        ThreadWorld::run(2, |comm| {
            let a = comm.now_ns();
            comm.barrier().unwrap();
            let b = comm.now_ns();
            assert!(b >= a);
        });
    }
}
