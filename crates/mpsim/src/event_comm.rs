//! The discrete-event executor: every rank is a cooperatively scheduled
//! task on one OS thread, and time is a virtual counter the reactor owns.
//!
//! The two existing executors map ranks to OS threads, which caps worlds at
//! a few dozen ranks; this one runs the same collectives at P = 16384+
//! because a blocked rank costs one parked future instead of one parked
//! thread. The semantics deliberately mirror
//! [`ThreadComm`](crate::thread_comm::ThreadComm):
//!
//! * sends are *eager* — the payload is copied into a pool-backed envelope
//!   and queued at the destination immediately, so the default
//!   send-then-receive `sendrecv` chain cannot deadlock;
//! * receives match by `(source, tag)` FIFO (non-overtaking), drain queued
//!   messages from an exited peer before failing with
//!   [`CommError::PeerFailed`], and enforce truncation identically;
//! * `recv_timeout` deadlines live on the **virtual clock**: when no task is
//!   runnable the reactor advances time straight to the earliest armed
//!   timer, so timeout-driven protocols (retransmission, failure detection)
//!   run deterministically and instantaneously instead of sleeping.
//!
//! The hot path is built from three dense structures (DESIGN.md §6):
//!
//! * [`LaneMailbox`] — per-destination radix-indexed source lanes with
//!   inline tag buckets, replacing a hashed `(source, tag)` map: matching
//!   costs two dependent loads and a 1–2 entry scan, no hashing;
//! * [`TimerWheel`] — a hierarchical timing wheel with O(1) arm *and*
//!   cancel: a satisfied `recv_timeout` disarms its deadline on the spot
//!   (the receive future cancels in `Drop`, so even abandoning a
//!   half-polled receive leaves no stale timer behind);
//! * a slab task arena plus a `Cell`-based run queue — futures live in one
//!   boxed slice polled in place, and a send that wakes its receiver goes
//!   straight onto the run queue without the `Waker` detour or its lock.
//!   Handed-out `Waker`s stay sound through a mutexed side queue that the
//!   reactor drains before declaring the world idle; nothing on the
//!   message path touches it.
//!
//! Waking is *targeted*: a parked receive registers which source it waits
//! on and a parked barrier flags itself, so a rank's exit wakes exactly the
//! tasks that could observe it instead of the whole world — the difference
//! between O(P) and O(P²) polls per sweep. Every scheduling decision is a
//! deterministic function of the workload, so runs replay bit-identically;
//! [`crate::counters::ReactorStats`] in the outcome reports what the
//! scheduling cost.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::acomm::{AsyncCommunicator, AsyncNonBlocking};
use crate::comm::{scatter_spans, validate_spans, IoSpan};
use crate::counters::{CounterCell, ReactorStats, TrafficStats, WorldTraffic};
use crate::error::{CommError, Result};
use crate::event_mailbox::LaneMailbox;
use crate::event_timer::{TimerHandle, TimerWheel};
use crate::mailbox::Envelope;
use crate::pool::{BufferPool, Payload, PoolStats, SharedBuf};
use crate::rank::{Rank, Tag};
use crate::thread_comm::WorldOutcome;

use crate::proto::{WATCH_ANY, WATCH_NONE};

/// Side queue for wakes arriving through the `Waker` protocol. `Waker` must
/// be `Send + Sync`, so this path keeps a lock — but nothing on the message
/// hot path uses it (deliveries push the destination task straight onto the
/// reactor's `Cell`-based run queue). The reactor drains it exactly once
/// per idle transition, so a user future that stashes its waker and wakes
/// later is still scheduled before the world is declared stuck.
///
/// Model-checked: schedcheck's `ExternalWakerModel` explores every
/// interleaving of external pushes against the drain/park transition and
/// proves no wake is dropped between the drain and the idle declaration
/// (its mutation knobs — skip the drain, drop drained entries — both
/// deadlock under the explorer).
struct ExternalWakes {
    queue: crate::sync::Mutex<Vec<usize>>,
}

struct TaskWaker {
    task: usize,
    external: Arc<ExternalWakes>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.external.queue.lock().push(self.task);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.external.queue.lock().push(self.task);
    }
}

/// The reactor-thread run queue: a plain `VecDeque` of task ids with
/// `Cell` dedup flags — a burst of deliveries to one task costs one poll,
/// and re-waking an already-queued task is two `Cell` accesses, no lock.
///
/// Model-checked: schedcheck's `RunQueueModel` drives the same
/// [`proto::wake_should_enqueue`](crate::proto::wake_should_enqueue) and
/// [`proto::exit_wakes_watch`](crate::proto::exit_wakes_watch) predicates
/// from abstract states and proves the dedup flag never loses a wake —
/// in particular that clearing the flag at *pop* time (below, before the
/// poll runs) is what keeps a budget-exhausted self-requeue alive.
struct Scheduler {
    run: RefCell<VecDeque<usize>>,
    queued: Vec<Cell<bool>>,
    wakeups: Cell<u64>,
    external: Arc<ExternalWakes>,
}

impl Scheduler {
    fn new(n: usize, external: Arc<ExternalWakes>) -> Self {
        Scheduler {
            run: RefCell::new(VecDeque::with_capacity(n)),
            queued: (0..n).map(|_| Cell::new(false)).collect(),
            wakeups: Cell::new(0),
            external,
        }
    }

    fn push(&self, task: usize) {
        if crate::proto::wake_should_enqueue(self.queued[task].replace(true)) {
            self.run.borrow_mut().push_back(task);
            self.wakeups.set(self.wakeups.get() + 1);
        }
    }

    fn pop(&self) -> Option<usize> {
        let task = self.run.borrow_mut().pop_front()?;
        self.queued[task].set(false);
        Some(task)
    }

    /// Move protocol-path wakes onto the run queue; returns whether any
    /// task became runnable. Called only when the run queue is empty.
    fn drain_external(&self) -> bool {
        let drained = std::mem::take(&mut *self.external.queue.lock());
        let mut any = false;
        for task in drained {
            self.push(task);
            any = true;
        }
        any
    }
}

/// Generation-counted barrier state, the single-threaded analogue of
/// [`StopBarrier`](crate::barrier::StopBarrier): the last arrival bumps the
/// generation and wakes everyone waiting; a completed generation is
/// unaffected by a later departure.
struct BarrierState {
    arrived: Cell<usize>,
    generation: Cell<u64>,
    /// First rank that left the world for good; fails current and future
    /// waits with `PeerFailed`, exactly like `StopBarrier::depart`.
    departed: Cell<Option<Rank>>,
}

struct EventShared {
    size: usize,
    /// Event-native mailboxes: one [`LaneMailbox`] per destination rank.
    /// Plain `RefCell` state — no locks, no condvars — because matching and
    /// waking all happen on the reactor thread.
    mailboxes: Vec<RefCell<LaneMailbox>>,
    exited: Vec<Cell<bool>>,
    /// The engine-owned virtual clock, in nanoseconds since world start.
    clock_ns: Cell<u64>,
    /// Armed deadlines; pops in `(deadline, seq)` order, identical to the
    /// heap it replaced, so replay stays deterministic.
    timers: RefCell<TimerWheel>,
    barrier: BarrierState,
    pool: Arc<BufferPool>,
    /// Per-class cache of rented-and-consumed envelope handles. The world is
    /// single-threaded, so a buffer a receive just copied out of can hand
    /// its whole `PooledBuf` straight to the next send of the same size
    /// class — skipping the pool's mutex freelists, its atomic counters, and
    /// the `Arc` bump a fresh rental pays. Spilled to the real pool beyond a
    /// small cap, and drained back into it before the outcome's pool stats
    /// are read, so `outstanding` still ends at zero.
    buf_cache: RefCell<[Vec<crate::pool::PooledBuf>; crate::pool::POOL_CLASSES]>,
    counters: Vec<CounterCell>,
    /// Receives the running task may still complete this turn; refilled to
    /// [`recv_poll_budget`] by the reactor before every task poll. Eager
    /// sends never block, so without this a rank whose mailbox is deep
    /// forwards its whole backlog in one poll and the wavefront piles up
    /// O(P²) in-flight envelopes; draining at most `B` per turn keeps the
    /// round-robin fair and the peak footprint at O(P·B).
    recv_budget: Cell<u32>,
    sched: Scheduler,
    /// Per-task targeted-wake registration: the source rank this task's
    /// parked receive waits on, or a `WATCH_*` sentinel.
    watching: Vec<Cell<usize>>,
    /// Per-task flag: parked inside a barrier generation.
    barrier_parked: Vec<Cell<bool>>,
}

/// Cap of [`EventShared::buf_cache`] entries per size class; overflow goes
/// back to the real pool (bounded memory, same as the pool's own freelists).
const BUF_CACHE_PER_CLASS: usize = 64;

/// Worldwide in-flight envelope target that sets the per-turn receive
/// budget: each task may consume up to `max(64, 2^21 / P)` envelopes per
/// reactor turn before it must yield (see [`EventShared::recv_budget`]).
/// The scaling keeps both ends honest — small and mid-size worlds get a
/// budget far above anything a turn consumes, so scheduling order, timer
/// arming order, and replay timestamps are identical with or without it,
/// while megascale worlds are clamped hard enough that the wavefront
/// holds O(2^21) resident envelopes instead of O(P²).
const RECV_INFLIGHT_TARGET: u32 = 1 << 21;

/// Floor of the per-turn receive budget at any world size; keeps the
/// round-robin slices big enough that yield bookkeeping stays amortized.
const MIN_RECV_POLL_BUDGET: u32 = 64;

fn recv_poll_budget(world_size: usize) -> u32 {
    (RECV_INFLIGHT_TARGET / world_size.max(1) as u32).max(MIN_RECV_POLL_BUDGET)
}

impl EventShared {
    fn now(&self) -> u64 {
        self.clock_ns.get()
    }

    /// Rent a buffer holding a copy of `src`, preferring the world-local
    /// handle cache over the shared pool (see [`EventShared::buf_cache`]).
    fn rent_copy(&self, src: &[u8]) -> crate::pool::PooledBuf {
        if let Some(class) = crate::pool::class_of(src.len()) {
            if let Some(mut buf) = self.buf_cache.borrow_mut()[class].pop() {
                buf.reset_len(src.len());
                buf.copy_from_slice(src);
                return buf;
            }
        }
        self.pool.rent_copy(src)
    }

    /// Rent a buffer of `total` bytes filled by concatenating `parts` —
    /// cached-handle counterpart of [`BufferPool::rent_gather`].
    fn rent_gather<'a>(
        &self,
        total: usize,
        parts: impl IntoIterator<Item = &'a [u8]>,
    ) -> crate::pool::PooledBuf {
        if let Some(class) = crate::pool::class_of(total) {
            if let Some(mut buf) = self.buf_cache.borrow_mut()[class].pop() {
                buf.reset_len(total);
                let mut filled = 0;
                for part in parts {
                    buf[filled..filled + part.len()].copy_from_slice(part);
                    filled += part.len();
                }
                assert!(filled == total, "rent_gather: parts sum to {filled}, expected {total}");
                return buf;
            }
        }
        self.pool.rent_gather(total, parts)
    }

    /// Return a consumed envelope's buffer to the world-local cache (or let
    /// it fall back to the pool when the class cache is full / unpooled).
    fn stash(&self, buf: crate::pool::PooledBuf) {
        if let Some(class) = buf.class() {
            let cache = &mut self.buf_cache.borrow_mut()[class];
            if cache.len() < BUF_CACHE_PER_CLASS {
                cache.push(buf);
            }
        }
    }

    fn arm_timer(&self, deadline_ns: u64, task: usize) -> TimerHandle {
        self.timers.borrow_mut().arm(self.now(), deadline_ns, task)
    }

    fn cancel_timer(&self, handle: TimerHandle) {
        self.timers.borrow_mut().cancel(handle);
    }

    /// Deliver one envelope and wake the destination's task directly — the
    /// batched eager-send path: no `Waker`, no lock, and if the receiver is
    /// already queued the dedup flag makes this two `Cell` reads.
    fn push_envelope(&self, dest: Rank, src: Rank, tag: Tag, data: Payload) {
        self.mailboxes[dest].borrow_mut().push(src, tag, Envelope { src, data });
        self.sched.push(dest);
    }

    /// Return a consumed envelope payload's buffer to the handle cache —
    /// only possible when nothing else aliases the bytes (shared fan-out
    /// clones fall through to their refcount drop instead).
    fn stash_payload(&self, data: Payload) {
        if let Some(buf) = data.try_unique() {
            self.stash(buf);
        }
    }

    fn try_pop(&self, me: Rank, src: Rank, tag: Tag) -> Option<Envelope> {
        self.mailboxes[me].borrow_mut().pop(src, tag)
    }

    /// Register `task` as parked on a receive from `src`; concurrent parks
    /// on different sources degrade to wake-on-any-exit (still correct —
    /// woken tasks re-check their state — just less precise).
    fn watch(&self, task: usize, src: Rank) {
        let cur = self.watching[task].get();
        if cur == WATCH_NONE {
            self.watching[task].set(src);
        } else if cur != src {
            self.watching[task].set(WATCH_ANY);
        }
    }

    fn unwatch(&self, task: usize, src: Rank) {
        if self.watching[task].get() == src {
            self.watching[task].set(WATCH_NONE);
        }
    }

    /// Wake every task parked in the current barrier generation.
    fn wake_barrier_waiters(&self) {
        for task in 0..self.size {
            if self.barrier_parked[task].get() {
                self.sched.push(task);
            }
        }
    }

    /// Record a normal departure of `rank` and wake exactly the tasks that
    /// can observe it: receives parked on `rank` (or on multiple sources)
    /// and barrier waiters. Everyone else stays parked — this is what keeps
    /// a P-rank sweep at O(P) exit work instead of O(P²). The wake decision
    /// is [`proto::exit_wakes_watch`](crate::proto::exit_wakes_watch), the
    /// same predicate schedcheck's `RunQueueModel` proves never strands a
    /// watcher (its `skip_exit_wake` mutation deadlocks under the explorer).
    fn rank_exited(&self, rank: Rank) {
        self.exited[rank].set(true);
        if self.barrier.departed.get().is_none() {
            self.barrier.departed.set(Some(rank));
        }
        for task in 0..self.size {
            if self.exited[task].get() {
                continue;
            }
            let watch = self.watching[task].get();
            if crate::proto::exit_wakes_watch(watch, rank) || self.barrier_parked[task].get() {
                self.sched.push(task);
            }
        }
    }
}

/// Entry point for discrete-event runs.
///
/// See [`EventWorld::run`].
pub struct EventWorld;

impl EventWorld {
    /// Run `f` on `n` ranks as cooperatively scheduled tasks on the calling
    /// thread, and gather results once every task has completed.
    ///
    /// `f` is invoked once per rank and returns that rank's future — write
    /// it as a closure returning an `async move` block:
    ///
    /// ```
    /// use mpsim::{AsyncCommunicator, EventWorld, Tag};
    ///
    /// let out = EventWorld::run(4, |comm| async move {
    ///     if comm.rank() == 0 {
    ///         for peer in 1..comm.size() {
    ///             comm.send(&[42], peer, Tag(7)).await.unwrap();
    ///         }
    ///         42u8
    ///     } else {
    ///         let mut buf = [0u8; 1];
    ///         comm.recv(&mut buf, 0, Tag(7)).await.unwrap();
    ///         buf[0]
    ///     }
    /// });
    /// assert!(out.results.iter().all(|&v| v == 42));
    /// ```
    ///
    /// [`WorldOutcome::elapsed`] reports **virtual** time: the final value
    /// of the world clock, which only advances when every task is blocked
    /// and the reactor jumps to the next armed timer deadline.
    /// [`WorldOutcome::reactor`] reports what the run cost the scheduler.
    ///
    /// # Panics
    ///
    /// A panic in any rank's future propagates out of `run` (the world is
    /// abandoned, mirroring the threaded executor's teardown-and-rethrow).
    /// Additionally, `run` panics if the world deadlocks: no task is
    /// runnable, no timer is armed, and unfinished tasks remain.
    pub fn run<R, F, Fut>(n: usize, f: F) -> WorldOutcome<R>
    where
        F: Fn(EventComm) -> Fut,
        Fut: Future<Output = R>,
    {
        assert!(n >= 1, "world needs at least one rank");
        let external = Arc::new(ExternalWakes { queue: crate::sync::Mutex::new(Vec::new()) });
        let shared = Rc::new(EventShared {
            size: n,
            mailboxes: (0..n).map(|_| RefCell::new(LaneMailbox::new(n))).collect(),
            exited: (0..n).map(|_| Cell::new(false)).collect(),
            clock_ns: Cell::new(0),
            timers: RefCell::new(TimerWheel::new()),
            barrier: BarrierState {
                arrived: Cell::new(0),
                generation: Cell::new(0),
                departed: Cell::new(None),
            },
            pool: BufferPool::new(),
            buf_cache: RefCell::new(Default::default()),
            counters: (0..n).map(|_| CounterCell::default()).collect(),
            recv_budget: Cell::new(recv_poll_budget(n)),
            sched: Scheduler::new(n, Arc::clone(&external)),
            watching: (0..n).map(|_| Cell::new(WATCH_NONE)).collect(),
            barrier_parked: (0..n).map(|_| Cell::new(false)).collect(),
        });

        // The slab task arena: every future is created up front (moving a
        // future is fine before its first poll), then lives at a stable
        // address inside one boxed slice until it is dropped in place. The
        // reactor owns the arena directly (not through `shared`), so
        // task → comm → shared never forms a reference cycle.
        let mut tasks: Box<[Option<Fut>]> =
            (0..n).map(|rank| Some(f(EventComm { rank, shared: Rc::clone(&shared) }))).collect();
        let wakers: Vec<Waker> = (0..n)
            .map(|task| Waker::from(Arc::new(TaskWaker { task, external: Arc::clone(&external) })))
            .collect();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut remaining = n;
        let mut spurious_polls = 0u64;
        for task in 0..n {
            shared.sched.push(task);
        }

        while remaining > 0 {
            let Some(task) = shared.sched.pop() else {
                // Nothing runnable on the fast queue: collect any wakes that
                // came through the `Waker` protocol, and only if there are
                // none advance virtual time to the earliest armed timer.
                if shared.sched.drain_external() {
                    continue;
                }
                let next = shared.timers.borrow_mut().pop_next(shared.clock_ns.get());
                match next {
                    Some((deadline_ns, timer_task)) => {
                        if deadline_ns > shared.clock_ns.get() {
                            shared.clock_ns.set(deadline_ns);
                        }
                        shared.sched.push(timer_task);
                    }
                    None => {
                        let stuck: Vec<Rank> = tasks
                            .iter()
                            .enumerate()
                            .filter_map(|(rank, t)| t.is_some().then_some(rank))
                            .take(8)
                            .collect();
                        // lint: allow(panic) — a deadlocked world can never
                        // produce an outcome; fail loudly with diagnostics.
                        panic!(
                            "EventWorld deadlock: {remaining} of {n} ranks blocked with no \
                             queued message or armed timer to wake them (stuck ranks, first 8: \
                             {stuck:?})"
                        );
                    }
                }
                continue;
            };
            let Some(fut) = tasks[task].as_mut() else {
                continue; // woken after completion (e.g. a protocol-path wake)
            };
            // SAFETY: the future lives in a boxed slice that never
            // reallocates, and its `Option` is only ever set to `None`
            // (dropping in place) — never moved out — so the pin holds.
            let fut = unsafe { Pin::new_unchecked(fut) };
            let mut cx = Context::from_waker(&wakers[task]);
            shared.recv_budget.set(recv_poll_budget(n));
            match fut.poll(&mut cx) {
                Poll::Ready(value) => {
                    results[task] = Some(value);
                    tasks[task] = None;
                    remaining -= 1;
                    shared.rank_exited(task);
                }
                Poll::Pending => spurious_polls += 1,
            }
        }

        let elapsed = Duration::from_nanos(shared.now());
        // Drop cached handles back into the pool first, so the reported
        // stats see every buffer returned (outstanding == 0 on clean runs).
        shared.buf_cache.borrow_mut().iter_mut().for_each(Vec::clear);
        let pool = shared.pool.stats();
        let traffic = WorldTraffic::new(shared.counters.iter().map(CounterCell::take).collect());
        let reactor = ReactorStats {
            wakeups: shared.sched.wakeups.get(),
            spurious_polls,
            timer_cancels: shared.timers.borrow().cancelled(),
            mailbox_spills: shared.mailboxes.iter().map(|m| m.borrow().spills()).sum(),
        };
        let results: Vec<R> = results
            .into_iter()
            // Every task completed (remaining == 0), so every slot is
            // filled. lint: allow(panic)
            .map(|r| r.expect("task finished without storing a result"))
            .collect();
        WorldOutcome { results, traffic, pool, elapsed, reactor }
    }
}

/// Rank-local communicator handle for the event executor.
///
/// One instance is handed to each rank's future; it is `Clone` (a cheap
/// reference-count bump) so helper tasks and decorators can hold their own.
#[derive(Clone)]
pub struct EventComm {
    rank: Rank,
    shared: Rc<EventShared>,
}

impl EventComm {
    /// Snapshot of this rank's traffic so far (final values are returned in
    /// [`WorldOutcome::traffic`]).
    pub fn traffic(&self) -> TrafficStats {
        self.shared.counters[self.rank].snapshot()
    }

    /// Snapshot of the world-shared buffer pool's counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.pool.stats()
    }

    fn ensure_rank(&self, rank: Rank) -> Result<()> {
        if rank < self.shared.size {
            Ok(())
        } else {
            Err(CommError::InvalidRank { rank, size: self.shared.size })
        }
    }

    /// Eager send: rent, copy, enqueue at the destination, wake it. Never
    /// suspends, which is what makes the default `sendrecv` chain safe.
    fn send_now(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.ensure_rank(dest)?;
        self.shared.counters[self.rank].record_send(dest, buf.len());
        self.shared.counters[self.rank].record_copy(buf.len());
        let env = self.shared.rent_copy(buf);
        self.shared.push_envelope(dest, self.rank, tag, env.into());
        Ok(())
    }

    /// Eager zero-copy send: a refcount clone of the shared rental is
    /// queued at the destination — no bytes move.
    fn send_shared_now(&self, buf: &SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.ensure_rank(dest)?;
        self.shared.counters[self.rank].record_send(dest, buf.len());
        self.shared.push_envelope(dest, self.rank, tag, Payload::Shared(buf.clone()));
        Ok(())
    }

    fn send_vectored_now(&self, buf: &[u8], spans: &[IoSpan], dest: Rank, tag: Tag) -> Result<()> {
        self.ensure_rank(dest)?;
        let total = validate_spans(buf.len(), spans)?;
        let env = self.shared.rent_gather(total, spans.iter().map(|s| &buf[s.range()]));
        self.shared.counters[self.rank].record_copy(total);
        self.shared.counters[self.rank].record_send_vectored(
            dest,
            total,
            spans.len().max(1) as u64,
        );
        self.shared.push_envelope(dest, self.rank, tag, env.into());
        Ok(())
    }

    /// Build the single leaf future behind `recv`/`recv_timeout`/`sendrecv`.
    /// Errors detected at build time (invalid rank, or a failed eager send
    /// for `sendrecv`) are carried in `early_err` and surface on first poll.
    fn recv_into<'b>(
        &self,
        early_err: Option<CommError>,
        buf: &'b mut [u8],
        src: Rank,
        tag: Tag,
        deadline_ns: Option<u64>,
    ) -> RecvIntoBuf<'_, 'b> {
        let early_err = early_err.or_else(|| self.ensure_rank(src).err());
        RecvIntoBuf { inner: RecvEnvelope::new(self, src, tag, deadline_ns), buf, early_err }
    }
}

/// Leaf future matching one envelope: checks the queue first (messages from
/// before a peer's exit are drained), then the exited flag, then the
/// virtual-clock deadline — the same priority order as the threaded
/// mailbox's `pop_watch`. Wakes arrive from envelope deliveries to this
/// rank, the watched peer's exit, and the armed timer; each poll re-checks.
///
/// Cancel-safety: completing *or dropping* this future disarms its timer
/// (O(1) on the wheel; a handle whose timer already fired is stale and the
/// cancel is a no-op) and deregisters the targeted-wake watch, so an
/// abandoned receive leaves no reactor state behind.
struct RecvEnvelope<'a> {
    comm: &'a EventComm,
    src: Rank,
    tag: Tag,
    deadline_ns: Option<u64>,
    timer: Option<TimerHandle>,
    watching: bool,
}

impl<'a> RecvEnvelope<'a> {
    fn new(comm: &'a EventComm, src: Rank, tag: Tag, deadline_ns: Option<u64>) -> Self {
        RecvEnvelope { comm, src, tag, deadline_ns, timer: None, watching: false }
    }

    /// Release reactor-side registrations (armed timer, watch entry).
    fn disarm(&mut self) {
        let shared = &self.comm.shared;
        if let Some(handle) = self.timer.take() {
            shared.cancel_timer(handle);
        }
        if self.watching {
            shared.unwatch(self.comm.rank, self.src);
            self.watching = false;
        }
    }
}

impl Future for RecvEnvelope<'_> {
    type Output = Result<Envelope>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let shared = &this.comm.shared;
        let me = this.comm.rank;
        let budget = shared.recv_budget.get();
        if budget == 0 {
            // Turn budget spent: requeue ourselves and yield so the other
            // ranks get their slice before this one drains more backlog.
            // The envelope (if any) stays queued — FIFO order is untouched,
            // and the next turn's refilled budget consumes it.
            shared.sched.push(me);
            return Poll::Pending;
        }
        if let Some(env) = shared.try_pop(me, this.src, this.tag) {
            shared.recv_budget.set(budget - 1);
            this.disarm();
            return Poll::Ready(Ok(env));
        }
        if this.src != me && shared.exited[this.src].get() {
            this.disarm();
            return Poll::Ready(Err(CommError::PeerFailed { rank: this.src }));
        }
        if let Some(deadline_ns) = this.deadline_ns {
            if shared.now() >= deadline_ns {
                this.disarm();
                return Poll::Ready(Err(CommError::Timeout { peer: this.src }));
            }
            if this.timer.is_none() {
                this.timer = Some(shared.arm_timer(deadline_ns, me));
            }
        }
        if !this.watching {
            shared.watch(me, this.src);
            this.watching = true;
        }
        Poll::Pending
    }
}

impl Drop for RecvEnvelope<'_> {
    fn drop(&mut self) {
        self.disarm();
    }
}

/// A whole `recv` (or the receive half of `sendrecv`) as one future: match
/// the envelope, check truncation, copy into the caller's buffer, record the
/// traffic — all in the same poll frame. `recv`/`recv_timeout`/`sendrecv`
/// return this directly instead of layering `async fn` state machines over
/// [`RecvEnvelope`], so parking and resuming a receive walks one `poll`
/// instead of a nest of generated ones; at megascale the ring wavefront
/// parks nearly every message, which makes that walk the hot path.
struct RecvIntoBuf<'a, 'b> {
    inner: RecvEnvelope<'a>,
    buf: &'b mut [u8],
    /// Error determined before the future was built (invalid rank, failed
    /// eager send); yielded on first poll.
    early_err: Option<CommError>,
}

impl Future for RecvIntoBuf<'_, '_> {
    type Output = Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Some(err) = this.early_err.take() {
            return Poll::Ready(Err(err));
        }
        let env = match Pin::new(&mut this.inner).poll(cx) {
            Poll::Ready(Ok(env)) => env,
            Poll::Ready(Err(err)) => return Poll::Ready(Err(err)),
            Poll::Pending => return Poll::Pending,
        };
        if env.data.len() > this.buf.len() {
            return Poll::Ready(Err(CommError::Truncation {
                capacity: this.buf.len(),
                incoming: env.data.len(),
            }));
        }
        let n = env.data.len();
        this.buf[..n].copy_from_slice(&env.data);
        let comm = this.inner.comm;
        comm.shared.counters[comm.rank].record_copy(n);
        comm.shared.counters[comm.rank].record_recv(this.inner.src, n);
        comm.shared.stash_payload(env.data);
        Poll::Ready(Ok(n))
    }
}

/// A whole `recv_owned` (or the receive half of `sendrecv_shared`) as one
/// future: match the envelope, check truncation against the declared
/// capacity, record the traffic, and hand the payload over as a refcounted
/// [`SharedBuf`] — all in the same poll frame, for the same reason as
/// [`RecvIntoBuf`]: the zero-copy ring parks nearly every message at
/// megascale, and every park/resume must walk one `poll`, not a nest of
/// generated state machines.
struct RecvOwned<'a> {
    inner: RecvEnvelope<'a>,
    capacity: usize,
    /// Error determined before the future was built (invalid rank, failed
    /// eager send half of `sendrecv_shared`); yielded on first poll.
    early_err: Option<CommError>,
}

impl Future for RecvOwned<'_> {
    type Output = Result<SharedBuf>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Some(err) = this.early_err.take() {
            return Poll::Ready(Err(err));
        }
        let env = match Pin::new(&mut this.inner).poll(cx) {
            Poll::Ready(Ok(env)) => env,
            Poll::Ready(Err(err)) => return Poll::Ready(Err(err)),
            Poll::Pending => return Poll::Pending,
        };
        if env.data.len() > this.capacity {
            return Poll::Ready(Err(CommError::Truncation {
                capacity: this.capacity,
                incoming: env.data.len(),
            }));
        }
        let comm = this.inner.comm;
        comm.shared.counters[comm.rank].record_recv(this.inner.src, env.data.len());
        // The matched payload is handed to the caller as-is — no copy, no
        // stash; its eventual drop recycles the rental.
        Poll::Ready(Ok(env.data.into_shared()))
    }
}

/// Barrier future; see [`BarrierState`]. The first poll registers the
/// arrival (completing the generation if this rank is last); later polls
/// resolve once the generation moved on or a peer departed. A parked wait
/// flags itself in `barrier_parked` so completion and departures wake
/// exactly the waiters; the flag is cleared on resolution and on drop.
struct BarrierWait<'a> {
    comm: &'a EventComm,
    joined_generation: Option<u64>,
}

impl Future for BarrierWait<'_> {
    type Output = Result<()>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let shared = &this.comm.shared;
        let me = this.comm.rank;
        let barrier = &shared.barrier;
        match this.joined_generation {
            None => {
                if let Some(rank) = barrier.departed.get() {
                    return Poll::Ready(Err(CommError::PeerFailed { rank }));
                }
                let arrived = barrier.arrived.get() + 1;
                if arrived == shared.size {
                    barrier.arrived.set(0);
                    barrier.generation.set(barrier.generation.get().wrapping_add(1));
                    shared.wake_barrier_waiters();
                    Poll::Ready(Ok(()))
                } else {
                    barrier.arrived.set(arrived);
                    this.joined_generation = Some(barrier.generation.get());
                    shared.barrier_parked[me].set(true);
                    Poll::Pending
                }
            }
            Some(generation) => {
                if barrier.generation.get() != generation {
                    // Released normally; a later departure affects the next
                    // generation, not this completed one.
                    shared.barrier_parked[me].set(false);
                    Poll::Ready(Ok(()))
                } else if let Some(rank) = barrier.departed.get() {
                    shared.barrier_parked[me].set(false);
                    Poll::Ready(Err(CommError::PeerFailed { rank }))
                } else {
                    shared.barrier_parked[me].set(true);
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for BarrierWait<'_> {
    fn drop(&mut self) {
        self.comm.shared.barrier_parked[self.comm.rank].set(false);
    }
}

impl AsyncCommunicator for EventComm {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn now_ns(&self) -> u64 {
        self.shared.now()
    }

    async fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.send_now(buf, dest, tag)
    }

    // `recv`, `recv_timeout` and `sendrecv` refine the trait's `async fn`
    // signatures to return the [`RecvIntoBuf`] leaf future directly: the
    // whole operation is one `poll` deep (see that type's docs).

    fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> impl Future<Output = Result<usize>> {
        self.recv_into(None, buf, src, tag, None)
    }

    fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> impl Future<Output = Result<usize>> {
        let nanos = u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX);
        let deadline_ns = self.shared.now().saturating_add(nanos);
        self.recv_into(None, buf, src, tag, Some(deadline_ns))
    }

    fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> impl Future<Output = Result<usize>> {
        // Same order as the trait default: the eager send happens at call
        // time; a send failure surfaces from the first poll, before any
        // receive state is consulted.
        let early_err = self.send_now(sendbuf, dest, sendtag).err();
        self.recv_into(early_err, recvbuf, src, recvtag, None)
    }

    async fn barrier(&self) -> Result<()> {
        BarrierWait { comm: self, joined_generation: None }.await
    }

    async fn send_vectored(
        &self,
        buf: &[u8],
        spans: &[IoSpan],
        dest: Rank,
        tag: Tag,
    ) -> Result<()> {
        self.send_vectored_now(buf, spans, dest, tag)
    }

    async fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        let total = validate_spans(buf.len(), spans)?;
        self.ensure_rank(src)?;
        let env = RecvEnvelope::new(self, src, tag, None).await?;
        if env.data.len() > total {
            return Err(CommError::Truncation { capacity: total, incoming: env.data.len() });
        }
        let n = scatter_spans(buf, spans, &env.data);
        self.shared.counters[self.rank].record_copy(n);
        self.shared.counters[self.rank].record_recv_vectored(src, n, spans.len().max(1) as u64);
        self.shared.stash_payload(env.data);
        Ok(n)
    }

    fn make_shared(&self, data: &[u8]) -> SharedBuf {
        // One counted copy stages the user bytes; every send_shared of (a
        // slice of) the result is a refcount bump.
        self.shared.counters[self.rank].record_copy(data.len());
        SharedBuf::new(self.shared.rent_copy(data))
    }

    fn note_copy(&self, bytes: usize) {
        self.shared.counters[self.rank].record_copy(bytes);
    }

    async fn send_shared(&self, buf: &SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.send_shared_now(buf, dest, tag)
    }

    // Like `recv`/`sendrecv`, the owned receives refine the trait's
    // `async fn` signatures to return the [`RecvOwned`] leaf future
    // directly, keeping the zero-copy ring's park/resume one `poll` deep.

    fn recv_owned(
        &self,
        capacity: usize,
        src: Rank,
        tag: Tag,
    ) -> impl Future<Output = Result<SharedBuf>> {
        let early_err = self.ensure_rank(src).err();
        RecvOwned { inner: RecvEnvelope::new(self, src, tag, None), capacity, early_err }
    }

    fn recv_owned_timeout(
        &self,
        capacity: usize,
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> impl Future<Output = Result<SharedBuf>> {
        let nanos = u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX);
        let deadline_ns = self.shared.now().saturating_add(nanos);
        let early_err = self.ensure_rank(src).err();
        RecvOwned {
            inner: RecvEnvelope::new(self, src, tag, Some(deadline_ns)),
            capacity,
            early_err,
        }
    }

    fn sendrecv_shared(
        &self,
        sendbuf: &SharedBuf,
        dest: Rank,
        sendtag: Tag,
        recv_capacity: usize,
        src: Rank,
        recvtag: Tag,
    ) -> impl Future<Output = Result<SharedBuf>> {
        // Eager send at call time, then the owned receive — deadlock-free
        // for the same reason the default sendrecv chain is.
        let early_err = self
            .send_shared_now(sendbuf, dest, sendtag)
            .err()
            .or_else(|| self.ensure_rank(src).err());
        RecvOwned {
            inner: RecvEnvelope::new(self, src, recvtag, None),
            capacity: recv_capacity,
            early_err,
        }
    }
}

/// Pending send on the event executor (sends complete at post time).
pub struct EventSendPending(());

/// Pending receive on the event executor: the match key recorded at post
/// time, resolved at wait time under the non-overtaking rule.
pub struct EventRecvPending {
    src: Rank,
    tag: Tag,
    capacity: usize,
}

impl AsyncNonBlocking for EventComm {
    type SendPending = EventSendPending;
    type RecvPending = EventRecvPending;

    fn isend(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<Self::SendPending> {
        self.send_now(buf, dest, tag)?;
        Ok(EventSendPending(()))
    }

    fn irecv(&self, capacity: usize, src: Rank, tag: Tag) -> Result<Self::RecvPending> {
        self.ensure_rank(src)?;
        Ok(EventRecvPending { src, tag, capacity })
    }

    async fn wait_send(&self, _pending: Self::SendPending) -> Result<()> {
        Ok(())
    }

    async fn wait_recv(&self, pending: Self::RecvPending, buf: &mut [u8]) -> Result<usize> {
        assert!(buf.len() >= pending.capacity, "wait_recv buffer smaller than the posted capacity");
        self.recv(&mut buf[..pending.capacity], pending.src, pending.tag).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn world_of_one_runs() {
        let out = EventWorld::run(1, |comm| async move {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier().await.unwrap();
            7u32
        });
        assert_eq!(out.results, vec![7]);
        assert_eq!(out.traffic.total_msgs(), 0);
    }

    #[test]
    fn pingpong_roundtrip() {
        let out = EventWorld::run(2, |comm| async move {
            let mut buf = [0u8; 4];
            if comm.rank() == 0 {
                comm.send(&[1, 2, 3, 4], 1, Tag(1)).await.unwrap();
                comm.recv(&mut buf, 1, Tag(2)).await.unwrap();
            } else {
                comm.recv(&mut buf, 0, Tag(1)).await.unwrap();
                comm.send(&buf, 0, Tag(2)).await.unwrap();
            }
            buf
        });
        assert_eq!(out.results[0], [1, 2, 3, 4]);
        assert_eq!(out.results[1], [1, 2, 3, 4]);
        assert!(out.traffic.is_balanced());
        assert_eq!(out.traffic.total_msgs(), 2);
        assert_eq!(out.traffic.total_bytes(), 8);
    }

    #[test]
    fn nonovertaking_order_per_pair() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                for i in 0..100u8 {
                    comm.send(&[i], 1, Tag(0)).await.unwrap();
                }
                vec![]
            } else {
                let mut got = Vec::new();
                let mut buf = [0u8; 1];
                for _ in 0..100 {
                    comm.recv(&mut buf, 0, Tag(0)).await.unwrap();
                    got.push(buf[0]);
                }
                got
            }
        });
        assert_eq!(out.results[1], (0..100u8).collect::<Vec<_>>());
    }

    #[test]
    fn tags_demultiplex() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                comm.send(&[1], 1, Tag(10)).await.unwrap();
                comm.send(&[2], 1, Tag(20)).await.unwrap();
                (0, 0)
            } else {
                let mut a = [0u8; 1];
                let mut b = [0u8; 1];
                comm.recv(&mut a, 0, Tag(20)).await.unwrap();
                comm.recv(&mut b, 0, Tag(10)).await.unwrap();
                (a[0], b[0])
            }
        });
        assert_eq!(out.results[1], (2, 1));
    }

    #[test]
    fn sendrecv_ring_does_not_deadlock() {
        let n = 8;
        let out = EventWorld::run(n, |comm| async move {
            let right = crate::rank::ring_right(comm.rank(), comm.size());
            let left = crate::rank::ring_left(comm.rank(), comm.size());
            let sbuf = [comm.rank() as u8];
            let mut rbuf = [0u8; 1];
            comm.sendrecv(&sbuf, right, Tag(0), &mut rbuf, left, Tag(0)).await.unwrap();
            rbuf[0] as usize
        });
        for (rank, &got) in out.results.iter().enumerate() {
            assert_eq!(got, crate::rank::ring_left(rank, n));
        }
    }

    #[test]
    fn self_send_loops_back() {
        let out = EventWorld::run(1, |comm| async move {
            comm.send(&[9, 9], 0, Tag(3)).await.unwrap();
            let mut buf = [0u8; 2];
            comm.recv(&mut buf, 0, Tag(3)).await.unwrap();
            buf
        });
        assert_eq!(out.results[0], [9, 9]);
    }

    #[test]
    fn truncation_reported() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                comm.send(&[0; 16], 1, Tag(0)).await.unwrap();
                Ok(0)
            } else {
                let mut small = [0u8; 4];
                comm.recv(&mut small, 0, Tag(0)).await.map(|_| 0)
            }
        });
        assert_eq!(out.results[1], Err(CommError::Truncation { capacity: 4, incoming: 16 }));
    }

    #[test]
    fn invalid_rank_rejected() {
        let out = EventWorld::run(1, |comm| async move { comm.send(&[], 5, Tag(0)).await });
        assert_eq!(out.results[0], Err(CommError::InvalidRank { rank: 5, size: 1 }));
    }

    #[test]
    fn barrier_synchronizes_all() {
        use std::cell::Cell;
        let arrived = Cell::new(0usize);
        EventWorld::run(6, |comm| {
            let arrived = &arrived;
            async move {
                arrived.set(arrived.get() + 1);
                comm.barrier().await.unwrap();
                assert_eq!(arrived.get(), 6);
            }
        });
    }

    #[test]
    fn barriers_are_reusable_across_generations() {
        EventWorld::run(5, |comm| async move {
            for _ in 0..10 {
                comm.barrier().await.unwrap();
            }
        });
    }

    #[test]
    fn vectored_roundtrip_gathers_and_scatters() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                let src: Vec<u8> = (0..16).collect();
                let spans = [IoSpan::new(12, 4), IoSpan::new(2, 3)];
                comm.send_vectored(&src, &spans, 1, Tag(0)).await.unwrap();
                vec![]
            } else {
                let mut dst = [0xEEu8; 10];
                let spans = [IoSpan::new(0, 4), IoSpan::new(6, 3)];
                let n = comm.recv_scattered(&mut dst, &spans, 0, Tag(0)).await.unwrap();
                assert_eq!(n, 7);
                dst.to_vec()
            }
        });
        assert_eq!(out.results[1], vec![12, 13, 14, 15, 0xEE, 0xEE, 2, 3, 4, 0xEE]);
        assert!(out.traffic.is_balanced());
        assert_eq!(out.traffic.total_msgs(), 2);
        assert_eq!(out.traffic.total_envelopes(), 1);
        assert_eq!(out.traffic.total_bytes(), 7);
    }

    #[test]
    fn vectored_truncation_checked_against_span_total() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                comm.send(&[0u8; 9], 1, Tag(0)).await.unwrap();
                Ok(0)
            } else {
                let mut dst = [0u8; 32];
                let spans = [IoSpan::new(0, 4), IoSpan::new(8, 4)];
                comm.recv_scattered(&mut dst, &spans, 0, Tag(0)).await.map(|_| 0)
            }
        });
        assert_eq!(out.results[1], Err(CommError::Truncation { capacity: 8, incoming: 9 }));
    }

    #[test]
    fn recv_timeout_expires_on_virtual_clock() {
        let out = EventWorld::run(2, |comm| async move {
            let mut buf = [0u8; 1];
            if comm.rank() == 0 {
                let t0 = comm.now_ns();
                let err = comm
                    .recv_timeout(&mut buf, 1, Tag(0), Duration::from_millis(40))
                    .await
                    .unwrap_err();
                // The clock jumped straight to the deadline — no real sleep.
                assert!(comm.now_ns() - t0 >= 40_000_000);
                comm.send(&[0], 1, Tag(1)).await.unwrap();
                err
            } else {
                comm.recv(&mut buf, 0, Tag(1)).await.unwrap();
                CommError::Timeout { peer: 99 } // placeholder
            }
        });
        assert_eq!(out.results[0], CommError::Timeout { peer: 1 });
        // The world's elapsed virtual time is exactly the one deadline jump.
        assert_eq!(out.elapsed, Duration::from_millis(40));
        // The timer genuinely fired: nothing was cancelled.
        assert_eq!(out.reactor.timer_cancels, 0);
    }

    #[test]
    fn recv_timeout_delivers_message_arriving_in_time() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                comm.send(&[42], 1, Tag(7)).await.unwrap();
                0
            } else {
                let mut buf = [0u8; 1];
                comm.recv_timeout(&mut buf, 0, Tag(7), Duration::from_secs(10)).await.unwrap();
                buf[0]
            }
        });
        assert_eq!(out.results[1], 42);
        // Delivery beat the deadline, so the clock never had to move.
        assert_eq!(out.elapsed, Duration::ZERO);
    }

    #[test]
    fn satisfied_recv_timeout_cancels_its_timer() {
        // Rank 0 parks first (arming its deadline), rank 1 then delivers:
        // the completed receive must disarm the wheel entry on the spot,
        // and the cancelled deadline must never advance the clock.
        let out = EventWorld::run(2, |comm| async move {
            let mut buf = [0u8; 1];
            if comm.rank() == 0 {
                comm.recv_timeout(&mut buf, 1, Tag(0), Duration::from_secs(5)).await.unwrap();
            } else {
                comm.send(&[7], 0, Tag(0)).await.unwrap();
            }
        });
        assert_eq!(out.reactor.timer_cancels, 1);
        assert_eq!(out.elapsed, Duration::ZERO);
    }

    #[test]
    fn reactor_counters_track_scheduler_work() {
        let out = EventWorld::run(2, |comm| async move {
            let mut buf = [0u8; 4];
            if comm.rank() == 0 {
                comm.send(&[1, 2, 3, 4], 1, Tag(1)).await.unwrap();
                comm.recv(&mut buf, 1, Tag(2)).await.unwrap();
            } else {
                comm.recv(&mut buf, 0, Tag(1)).await.unwrap();
                comm.send(&buf, 0, Tag(2)).await.unwrap();
            }
        });
        // Initial speculative polls plus delivery wakes, all deduplicated.
        assert!(out.reactor.wakeups >= 2, "wakeups: {}", out.reactor.wakeups);
        // Rank 0 parks once waiting for the reply.
        assert!(out.reactor.spurious_polls >= 1);
        assert_eq!(out.reactor.timer_cancels, 0);
        assert_eq!(out.reactor.mailbox_spills, 0, "collective tags must stay inline");
    }

    #[test]
    fn wild_tags_are_counted_as_spills_and_still_demultiplex() {
        use crate::event_mailbox::INLINE_TAGS;
        let tags = INLINE_TAGS as u32 + 4;
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                for t in 0..tags {
                    comm.send(&[t as u8], 1, Tag(t)).await.unwrap();
                }
            } else {
                let mut buf = [0u8; 1];
                for t in (0..tags).rev() {
                    comm.recv(&mut buf, 0, Tag(t)).await.unwrap();
                    assert_eq!(buf[0], t as u8);
                }
            }
        });
        assert_eq!(out.reactor.mailbox_spills, 4, "tags beyond the inline buckets must spill");
    }

    #[test]
    fn recv_from_exited_rank_fails_instead_of_hanging() {
        let out = EventWorld::run(3, |comm| async move {
            if comm.rank() == 1 {
                return Ok(0); // exits immediately, sends nothing
            }
            let mut buf = [0u8; 1];
            comm.recv(&mut buf, 1, Tag(0)).await.map(|_| 1)
        });
        assert_eq!(out.results[0], Err(CommError::PeerFailed { rank: 1 }));
        assert_eq!(out.results[2], Err(CommError::PeerFailed { rank: 1 }));
    }

    #[test]
    fn messages_sent_before_exit_are_still_delivered() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                comm.send(&[1], 1, Tag(0)).await.unwrap();
                comm.send(&[2], 1, Tag(0)).await.unwrap();
                vec![]
            } else {
                // Yield until rank 0 has exited, so the deliveries genuinely
                // race the exited flag.
                let mut buf = [0u8; 1];
                while comm.recv_timeout(&mut buf, 0, Tag(1), Duration::from_millis(1)).await.is_ok()
                {
                }
                let mut got = Vec::new();
                for _ in 0..2 {
                    comm.recv(&mut buf, 0, Tag(0)).await.unwrap();
                    got.push(buf[0]);
                }
                assert_eq!(
                    comm.recv(&mut buf, 0, Tag(0)).await.unwrap_err(),
                    CommError::PeerFailed { rank: 0 }
                );
                got
            }
        });
        assert_eq!(out.results[1], vec![1, 2]);
    }

    #[test]
    fn barrier_after_peer_exit_fails_instead_of_hanging() {
        let out = EventWorld::run(3, |comm| async move {
            if comm.rank() == 2 {
                return Ok(());
            }
            comm.barrier().await
        });
        assert_eq!(out.results[0], Err(CommError::PeerFailed { rank: 2 }));
        assert_eq!(out.results[1], Err(CommError::PeerFailed { rank: 2 }));
    }

    #[test]
    fn nonblocking_posts_complete_in_post_order() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                for i in 0..4u8 {
                    let p = comm.isend(&[i], 1, Tag(7)).unwrap();
                    comm.wait_send(p).await.unwrap();
                }
                vec![]
            } else {
                let pendings: Vec<_> = (0..4).map(|_| comm.irecv(1, 0, Tag(7)).unwrap()).collect();
                let mut got = Vec::new();
                for p in pendings {
                    let mut b = [0u8; 1];
                    comm.wait_recv(p, &mut b).await.unwrap();
                    got.push(b[0]);
                }
                got
            }
        });
        assert_eq!(out.results[1], vec![0, 1, 2, 3]);
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let res = catch_unwind(AssertUnwindSafe(|| {
            EventWorld::run(2, |comm| async move {
                // Both ranks receive a message nobody will ever send.
                let mut buf = [0u8; 1];
                let _ = comm.recv(&mut buf, 1 - comm.rank(), Tag(0)).await;
            })
        }));
        let payload = res.unwrap_err();
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
    }

    #[test]
    fn panic_in_one_rank_propagates() {
        let res = catch_unwind(AssertUnwindSafe(|| {
            EventWorld::run(3, |comm| async move {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                let mut buf = [0u8; 1];
                let _ = comm.recv(&mut buf, 1, Tag(0)).await;
            })
        }));
        assert!(res.is_err());
    }

    #[test]
    fn now_ns_is_monotone_and_runs_are_deterministic() {
        let run = || {
            EventWorld::run(4, |comm| async move {
                let a = comm.now_ns();
                comm.barrier().await.unwrap();
                let mut buf = [0u8; 1];
                let right = crate::rank::ring_right(comm.rank(), comm.size());
                let left = crate::rank::ring_left(comm.rank(), comm.size());
                comm.sendrecv(&[comm.rank() as u8], right, Tag(0), &mut buf, left, Tag(0))
                    .await
                    .unwrap();
                let b = comm.now_ns();
                assert!(b >= a);
                (buf[0], b)
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.results, b.results);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.reactor, b.reactor, "scheduler work must replay identically");
    }

    #[test]
    fn megascale_fanout_world() {
        // A quick structural check that worlds far beyond thread capacity
        // run: a 2048-rank binomial-style relay where every rank forwards to
        // 2·rank+1 and 2·rank+2.
        let n = 2048;
        let out = EventWorld::run(n, |comm| async move {
            let me = comm.rank();
            let mut buf = [0u8; 8];
            if me != 0 {
                comm.recv(&mut buf, (me - 1) / 2, Tag(1)).await.unwrap();
            }
            for child in [2 * me + 1, 2 * me + 2] {
                if child < comm.size() {
                    comm.send(&buf, child, Tag(1)).await.unwrap();
                }
            }
            me
        });
        assert_eq!(out.traffic.total_msgs(), (n - 1) as u64);
        assert!(out.traffic.is_balanced());
        assert_eq!(out.reactor.mailbox_spills, 0);
        // Targeted wakes: exits must not storm the world with spurious
        // polls — the floor is one park per blocked receive, and the
        // ceiling here allows only a small constant factor over it.
        assert!(
            out.reactor.spurious_polls < 4 * n as u64,
            "exit storm: {} spurious polls for {} ranks",
            out.reactor.spurious_polls,
            n
        );
    }
}
