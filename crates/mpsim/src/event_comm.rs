//! The discrete-event executor: every rank is a cooperatively scheduled
//! task on one OS thread, and time is a virtual counter the reactor owns.
//!
//! The two existing executors map ranks to OS threads, which caps worlds at
//! a few dozen ranks; this one runs the same collectives at P = 4096+ because
//! a blocked rank costs one parked future instead of one parked thread. The
//! semantics deliberately mirror [`ThreadComm`](crate::thread_comm::ThreadComm):
//!
//! * sends are *eager* — the payload is copied into a pool-backed envelope
//!   and queued at the destination immediately, so the default
//!   send-then-receive `sendrecv` chain cannot deadlock;
//! * receives match by `(source, tag)` FIFO (non-overtaking), drain queued
//!   messages from an exited peer before failing with
//!   [`CommError::PeerFailed`], and enforce truncation identically;
//! * `recv_timeout` deadlines live on the **virtual clock**: when no task is
//!   runnable the reactor advances time straight to the earliest armed
//!   timer, so timeout-driven protocols (retransmission, failure detection)
//!   run deterministically and instantaneously instead of sleeping.
//!
//! No async runtime is involved: tasks are plain `std` futures, the ready
//! queue is a `VecDeque` of rank ids, and wakers push into it. See
//! DESIGN.md §6 for the task model and the reasons a hand-rolled reactor
//! beats both a thread pool and an external executor here.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::acomm::{AsyncCommunicator, AsyncNonBlocking};
use crate::comm::{scatter_spans, validate_spans, IoSpan};
use crate::counters::{CounterCell, TrafficStats, WorldTraffic};
use crate::error::{CommError, Result};
use crate::mailbox::Envelope;
use crate::pool::{BufferPool, PoolStats};
use crate::rank::{Rank, Tag};
use crate::thread_comm::WorldOutcome;

/// Ready queue shared between the reactor and task wakers. `Waker` requires
/// `Send + Sync`, so this sits behind the workspace sync facade even though
/// the whole world runs on one thread; the lock is always uncontended.
struct ReadyQueue {
    state: crate::sync::Mutex<ReadyState>,
}

struct ReadyState {
    queue: VecDeque<usize>,
    /// Dedup flags: a task already enqueued is not enqueued again, so a
    /// burst of deliveries costs one poll, not one poll per envelope.
    queued: Vec<bool>,
}

impl ReadyQueue {
    fn new(n: usize) -> Self {
        Self {
            state: crate::sync::Mutex::new(ReadyState {
                queue: VecDeque::with_capacity(n),
                queued: vec![false; n],
            }),
        }
    }

    fn push(&self, task: usize) {
        let mut st = self.state.lock();
        if !st.queued[task] {
            st.queued[task] = true;
            st.queue.push_back(task);
        }
    }

    fn pop(&self) -> Option<usize> {
        let mut st = self.state.lock();
        let task = st.queue.pop_front();
        if let Some(t) = task {
            st.queued[t] = false;
        }
        task
    }
}

struct TaskWaker {
    task: usize,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.task);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.task);
    }
}

/// Generation-counted barrier state, the single-threaded analogue of
/// [`StopBarrier`](crate::barrier::StopBarrier): the last arrival bumps the
/// generation and wakes everyone; a completed generation is unaffected by a
/// later departure.
struct BarrierState {
    arrived: Cell<usize>,
    generation: Cell<u64>,
    /// First rank that left the world for good; fails current and future
    /// waits with `PeerFailed`, exactly like `StopBarrier::depart`.
    departed: Cell<Option<Rank>>,
}

/// One rank's mailbox: FIFO envelope queues keyed by `(source, tag)`.
type EventMailbox = RefCell<HashMap<(Rank, Tag), VecDeque<Envelope>>>;

struct EventShared {
    size: usize,
    /// Event-native mailboxes: per destination rank, FIFO queues keyed by
    /// `(source, tag)`. Plain `RefCell` state — no locks, no condvars —
    /// because matching and waking all happen on the reactor thread.
    mailboxes: Vec<EventMailbox>,
    exited: Vec<Cell<bool>>,
    /// The engine-owned virtual clock, in nanoseconds since world start.
    clock_ns: Cell<u64>,
    /// Armed timers as `(deadline_ns, seq, task)` in a min-heap; `seq` makes
    /// equal deadlines pop in arming order, keeping runs deterministic.
    timers: RefCell<BinaryHeap<Reverse<(u64, u64, usize)>>>,
    timer_seq: Cell<u64>,
    barrier: BarrierState,
    pool: Arc<BufferPool>,
    counters: Vec<CounterCell>,
    ready: Arc<ReadyQueue>,
}

impl EventShared {
    fn now(&self) -> u64 {
        self.clock_ns.get()
    }

    fn arm_timer(&self, deadline_ns: u64, task: usize) {
        let seq = self.timer_seq.get();
        self.timer_seq.set(seq + 1);
        self.timers.borrow_mut().push(Reverse((deadline_ns, seq, task)));
    }

    /// Deliver one envelope and wake the destination's task.
    fn push_envelope(&self, dest: Rank, src: Rank, tag: Tag, data: crate::pool::PooledBuf) {
        self.mailboxes[dest]
            .borrow_mut()
            .entry((src, tag))
            .or_default()
            .push_back(Envelope { src, data });
        self.ready.push(dest);
    }

    fn try_pop(&self, me: Rank, src: Rank, tag: Tag) -> Option<Envelope> {
        self.mailboxes[me].borrow_mut().get_mut(&(src, tag))?.pop_front()
    }

    fn wake_all(&self) {
        for task in 0..self.size {
            if !self.exited[task].get() {
                self.ready.push(task);
            }
        }
    }

    /// Record a normal departure of `rank`: peers blocked receiving from it
    /// or waiting in the barrier must re-check and fail instead of hanging.
    fn rank_exited(&self, rank: Rank) {
        self.exited[rank].set(true);
        if self.barrier.departed.get().is_none() {
            self.barrier.departed.set(Some(rank));
        }
        self.wake_all();
    }
}

/// Entry point for discrete-event runs.
///
/// See [`EventWorld::run`].
pub struct EventWorld;

impl EventWorld {
    /// Run `f` on `n` ranks as cooperatively scheduled tasks on the calling
    /// thread, and gather results once every task has completed.
    ///
    /// `f` is invoked once per rank and returns that rank's future — write
    /// it as a closure returning an `async move` block:
    ///
    /// ```
    /// use mpsim::{AsyncCommunicator, EventWorld, Tag};
    ///
    /// let out = EventWorld::run(4, |comm| async move {
    ///     if comm.rank() == 0 {
    ///         for peer in 1..comm.size() {
    ///             comm.send(&[42], peer, Tag(7)).await.unwrap();
    ///         }
    ///         42u8
    ///     } else {
    ///         let mut buf = [0u8; 1];
    ///         comm.recv(&mut buf, 0, Tag(7)).await.unwrap();
    ///         buf[0]
    ///     }
    /// });
    /// assert!(out.results.iter().all(|&v| v == 42));
    /// ```
    ///
    /// [`WorldOutcome::elapsed`] reports **virtual** time: the final value
    /// of the world clock, which only advances when every task is blocked
    /// and the reactor jumps to the next armed timer deadline.
    ///
    /// # Panics
    ///
    /// A panic in any rank's future propagates out of `run` (the world is
    /// abandoned, mirroring the threaded executor's teardown-and-rethrow).
    /// Additionally, `run` panics if the world deadlocks: no task is
    /// runnable, no timer is armed, and unfinished tasks remain.
    pub fn run<R, F, Fut>(n: usize, f: F) -> WorldOutcome<R>
    where
        F: Fn(EventComm) -> Fut,
        Fut: Future<Output = R>,
    {
        assert!(n >= 1, "world needs at least one rank");
        let ready = Arc::new(ReadyQueue::new(n));
        let shared = Rc::new(EventShared {
            size: n,
            mailboxes: (0..n).map(|_| RefCell::new(HashMap::new())).collect(),
            exited: (0..n).map(|_| Cell::new(false)).collect(),
            clock_ns: Cell::new(0),
            timers: RefCell::new(BinaryHeap::new()),
            timer_seq: Cell::new(0),
            barrier: BarrierState {
                arrived: Cell::new(0),
                generation: Cell::new(0),
                departed: Cell::new(None),
            },
            pool: BufferPool::new(),
            counters: (0..n).map(|_| CounterCell::default()).collect(),
            ready: Arc::clone(&ready),
        });

        // The reactor owns the task futures directly (not through `shared`),
        // so task → comm → shared never forms a reference cycle.
        let mut tasks: Vec<Option<Pin<Box<Fut>>>> = (0..n)
            .map(|rank| Some(Box::pin(f(EventComm { rank, shared: Rc::clone(&shared) }))))
            .collect();
        let wakers: Vec<Waker> = (0..n)
            .map(|task| Waker::from(Arc::new(TaskWaker { task, ready: Arc::clone(&ready) })))
            .collect();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut remaining = n;
        for task in 0..n {
            ready.push(task);
        }

        while remaining > 0 {
            let Some(task) = ready.pop() else {
                // Nothing runnable: advance virtual time to the earliest
                // armed timer and wake its task. Stale timers (their receive
                // completed long ago) cause one harmless spurious poll.
                let next = shared.timers.borrow_mut().pop();
                match next {
                    Some(Reverse((deadline_ns, _, timer_task))) => {
                        if deadline_ns > shared.clock_ns.get() {
                            shared.clock_ns.set(deadline_ns);
                        }
                        ready.push(timer_task);
                    }
                    None => {
                        let stuck: Vec<Rank> = tasks
                            .iter()
                            .enumerate()
                            .filter_map(|(rank, t)| t.is_some().then_some(rank))
                            .take(8)
                            .collect();
                        // lint: allow(panic) — a deadlocked world can never
                        // produce an outcome; fail loudly with diagnostics.
                        panic!(
                            "EventWorld deadlock: {remaining} of {n} ranks blocked with no \
                             queued message or armed timer to wake them (stuck ranks, first 8: \
                             {stuck:?})"
                        );
                    }
                }
                continue;
            };
            let Some(fut) = tasks[task].as_mut() else {
                continue; // woken after completion (e.g. a stale timer)
            };
            let mut cx = Context::from_waker(&wakers[task]);
            if let Poll::Ready(value) = fut.as_mut().poll(&mut cx) {
                results[task] = Some(value);
                tasks[task] = None;
                remaining -= 1;
                shared.rank_exited(task);
            }
        }

        let elapsed = Duration::from_nanos(shared.now());
        let pool = shared.pool.stats();
        let traffic = WorldTraffic::new(shared.counters.iter().map(CounterCell::take).collect());
        let results: Vec<R> = results
            .into_iter()
            // Every task completed (remaining == 0), so every slot is
            // filled. lint: allow(panic)
            .map(|r| r.expect("task finished without storing a result"))
            .collect();
        WorldOutcome { results, traffic, pool, elapsed }
    }
}

/// Rank-local communicator handle for the event executor.
///
/// One instance is handed to each rank's future; it is `Clone` (a cheap
/// reference-count bump) so helper tasks and decorators can hold their own.
#[derive(Clone)]
pub struct EventComm {
    rank: Rank,
    shared: Rc<EventShared>,
}

impl EventComm {
    /// Snapshot of this rank's traffic so far (final values are returned in
    /// [`WorldOutcome::traffic`]).
    pub fn traffic(&self) -> TrafficStats {
        self.shared.counters[self.rank].snapshot()
    }

    /// Snapshot of the world-shared buffer pool's counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.pool.stats()
    }

    fn ensure_rank(&self, rank: Rank) -> Result<()> {
        if rank < self.shared.size {
            Ok(())
        } else {
            Err(CommError::InvalidRank { rank, size: self.shared.size })
        }
    }

    /// Eager send: rent, copy, enqueue at the destination, wake it. Never
    /// suspends, which is what makes the default `sendrecv` chain safe.
    fn send_now(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.ensure_rank(dest)?;
        self.shared.counters[self.rank].record_send(dest, buf.len());
        let env = self.shared.pool.rent_copy(buf);
        self.shared.push_envelope(dest, self.rank, tag, env);
        Ok(())
    }

    fn send_vectored_now(&self, buf: &[u8], spans: &[IoSpan], dest: Rank, tag: Tag) -> Result<()> {
        self.ensure_rank(dest)?;
        let total = validate_spans(buf.len(), spans)?;
        let env = self.shared.pool.rent_gather(total, spans.iter().map(|s| &buf[s.range()]));
        self.shared.counters[self.rank].record_send_vectored(
            dest,
            total,
            spans.len().max(1) as u64,
        );
        self.shared.push_envelope(dest, self.rank, tag, env);
        Ok(())
    }

    async fn recv_inner(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        deadline_ns: Option<u64>,
    ) -> Result<usize> {
        self.ensure_rank(src)?;
        let env = RecvEnvelope { comm: self, src, tag, deadline_ns, timer_armed: false }.await?;
        if env.data.len() > buf.len() {
            return Err(CommError::Truncation { capacity: buf.len(), incoming: env.data.len() });
        }
        buf[..env.data.len()].copy_from_slice(&env.data);
        self.shared.counters[self.rank].record_recv(src, env.data.len());
        Ok(env.data.len())
    }
}

/// Leaf future matching one envelope: checks the queue first (messages from
/// before a peer's exit are drained), then the exited flag, then the
/// virtual-clock deadline — the same priority order as the threaded
/// mailbox's `pop_watch`. Wakes arrive from envelope deliveries to this
/// rank, peer exits, and the armed timer; each poll simply re-checks.
struct RecvEnvelope<'a> {
    comm: &'a EventComm,
    src: Rank,
    tag: Tag,
    deadline_ns: Option<u64>,
    timer_armed: bool,
}

impl Future for RecvEnvelope<'_> {
    type Output = Result<Envelope>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let shared = &this.comm.shared;
        let me = this.comm.rank;
        if let Some(env) = shared.try_pop(me, this.src, this.tag) {
            return Poll::Ready(Ok(env));
        }
        if this.src != me && shared.exited[this.src].get() {
            return Poll::Ready(Err(CommError::PeerFailed { rank: this.src }));
        }
        if let Some(deadline_ns) = this.deadline_ns {
            if shared.now() >= deadline_ns {
                return Poll::Ready(Err(CommError::Timeout { peer: this.src }));
            }
            if !this.timer_armed {
                shared.arm_timer(deadline_ns, me);
                this.timer_armed = true;
            }
        }
        Poll::Pending
    }
}

/// Barrier future; see [`BarrierState`]. The first poll registers the
/// arrival (completing the generation if this rank is last); later polls
/// resolve once the generation moved on or a peer departed.
struct BarrierWait<'a> {
    comm: &'a EventComm,
    joined_generation: Option<u64>,
}

impl Future for BarrierWait<'_> {
    type Output = Result<()>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let shared = &this.comm.shared;
        let barrier = &shared.barrier;
        match this.joined_generation {
            None => {
                if let Some(rank) = barrier.departed.get() {
                    return Poll::Ready(Err(CommError::PeerFailed { rank }));
                }
                let arrived = barrier.arrived.get() + 1;
                if arrived == shared.size {
                    barrier.arrived.set(0);
                    barrier.generation.set(barrier.generation.get().wrapping_add(1));
                    shared.wake_all();
                    Poll::Ready(Ok(()))
                } else {
                    barrier.arrived.set(arrived);
                    this.joined_generation = Some(barrier.generation.get());
                    Poll::Pending
                }
            }
            Some(generation) => {
                if barrier.generation.get() != generation {
                    // Released normally; a later departure affects the next
                    // generation, not this completed one.
                    Poll::Ready(Ok(()))
                } else if let Some(rank) = barrier.departed.get() {
                    Poll::Ready(Err(CommError::PeerFailed { rank }))
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

impl AsyncCommunicator for EventComm {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn now_ns(&self) -> u64 {
        self.shared.now()
    }

    async fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.send_now(buf, dest, tag)
    }

    async fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.recv_inner(buf, src, tag, None).await
    }

    async fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<usize> {
        let nanos = u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX);
        let deadline_ns = self.shared.now().saturating_add(nanos);
        self.recv_inner(buf, src, tag, Some(deadline_ns)).await
    }

    async fn barrier(&self) -> Result<()> {
        BarrierWait { comm: self, joined_generation: None }.await
    }

    async fn send_vectored(
        &self,
        buf: &[u8],
        spans: &[IoSpan],
        dest: Rank,
        tag: Tag,
    ) -> Result<()> {
        self.send_vectored_now(buf, spans, dest, tag)
    }

    async fn recv_scattered(
        &self,
        buf: &mut [u8],
        spans: &[IoSpan],
        src: Rank,
        tag: Tag,
    ) -> Result<usize> {
        let total = validate_spans(buf.len(), spans)?;
        self.ensure_rank(src)?;
        let env =
            RecvEnvelope { comm: self, src, tag, deadline_ns: None, timer_armed: false }.await?;
        if env.data.len() > total {
            return Err(CommError::Truncation { capacity: total, incoming: env.data.len() });
        }
        let n = scatter_spans(buf, spans, &env.data);
        self.shared.counters[self.rank].record_recv_vectored(src, n, spans.len().max(1) as u64);
        Ok(n)
    }
}

/// Pending send on the event executor (sends complete at post time).
pub struct EventSendPending(());

/// Pending receive on the event executor: the match key recorded at post
/// time, resolved at wait time under the non-overtaking rule.
pub struct EventRecvPending {
    src: Rank,
    tag: Tag,
    capacity: usize,
}

impl AsyncNonBlocking for EventComm {
    type SendPending = EventSendPending;
    type RecvPending = EventRecvPending;

    fn isend(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<Self::SendPending> {
        self.send_now(buf, dest, tag)?;
        Ok(EventSendPending(()))
    }

    fn irecv(&self, capacity: usize, src: Rank, tag: Tag) -> Result<Self::RecvPending> {
        self.ensure_rank(src)?;
        Ok(EventRecvPending { src, tag, capacity })
    }

    async fn wait_send(&self, _pending: Self::SendPending) -> Result<()> {
        Ok(())
    }

    async fn wait_recv(&self, pending: Self::RecvPending, buf: &mut [u8]) -> Result<usize> {
        assert!(buf.len() >= pending.capacity, "wait_recv buffer smaller than the posted capacity");
        self.recv(&mut buf[..pending.capacity], pending.src, pending.tag).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn world_of_one_runs() {
        let out = EventWorld::run(1, |comm| async move {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier().await.unwrap();
            7u32
        });
        assert_eq!(out.results, vec![7]);
        assert_eq!(out.traffic.total_msgs(), 0);
    }

    #[test]
    fn pingpong_roundtrip() {
        let out = EventWorld::run(2, |comm| async move {
            let mut buf = [0u8; 4];
            if comm.rank() == 0 {
                comm.send(&[1, 2, 3, 4], 1, Tag(1)).await.unwrap();
                comm.recv(&mut buf, 1, Tag(2)).await.unwrap();
            } else {
                comm.recv(&mut buf, 0, Tag(1)).await.unwrap();
                comm.send(&buf, 0, Tag(2)).await.unwrap();
            }
            buf
        });
        assert_eq!(out.results[0], [1, 2, 3, 4]);
        assert_eq!(out.results[1], [1, 2, 3, 4]);
        assert!(out.traffic.is_balanced());
        assert_eq!(out.traffic.total_msgs(), 2);
        assert_eq!(out.traffic.total_bytes(), 8);
    }

    #[test]
    fn nonovertaking_order_per_pair() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                for i in 0..100u8 {
                    comm.send(&[i], 1, Tag(0)).await.unwrap();
                }
                vec![]
            } else {
                let mut got = Vec::new();
                let mut buf = [0u8; 1];
                for _ in 0..100 {
                    comm.recv(&mut buf, 0, Tag(0)).await.unwrap();
                    got.push(buf[0]);
                }
                got
            }
        });
        assert_eq!(out.results[1], (0..100u8).collect::<Vec<_>>());
    }

    #[test]
    fn tags_demultiplex() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                comm.send(&[1], 1, Tag(10)).await.unwrap();
                comm.send(&[2], 1, Tag(20)).await.unwrap();
                (0, 0)
            } else {
                let mut a = [0u8; 1];
                let mut b = [0u8; 1];
                comm.recv(&mut a, 0, Tag(20)).await.unwrap();
                comm.recv(&mut b, 0, Tag(10)).await.unwrap();
                (a[0], b[0])
            }
        });
        assert_eq!(out.results[1], (2, 1));
    }

    #[test]
    fn sendrecv_ring_does_not_deadlock() {
        let n = 8;
        let out = EventWorld::run(n, |comm| async move {
            let right = crate::rank::ring_right(comm.rank(), comm.size());
            let left = crate::rank::ring_left(comm.rank(), comm.size());
            let sbuf = [comm.rank() as u8];
            let mut rbuf = [0u8; 1];
            comm.sendrecv(&sbuf, right, Tag(0), &mut rbuf, left, Tag(0)).await.unwrap();
            rbuf[0] as usize
        });
        for (rank, &got) in out.results.iter().enumerate() {
            assert_eq!(got, crate::rank::ring_left(rank, n));
        }
    }

    #[test]
    fn self_send_loops_back() {
        let out = EventWorld::run(1, |comm| async move {
            comm.send(&[9, 9], 0, Tag(3)).await.unwrap();
            let mut buf = [0u8; 2];
            comm.recv(&mut buf, 0, Tag(3)).await.unwrap();
            buf
        });
        assert_eq!(out.results[0], [9, 9]);
    }

    #[test]
    fn truncation_reported() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                comm.send(&[0; 16], 1, Tag(0)).await.unwrap();
                Ok(0)
            } else {
                let mut small = [0u8; 4];
                comm.recv(&mut small, 0, Tag(0)).await.map(|_| 0)
            }
        });
        assert_eq!(out.results[1], Err(CommError::Truncation { capacity: 4, incoming: 16 }));
    }

    #[test]
    fn invalid_rank_rejected() {
        let out = EventWorld::run(1, |comm| async move { comm.send(&[], 5, Tag(0)).await });
        assert_eq!(out.results[0], Err(CommError::InvalidRank { rank: 5, size: 1 }));
    }

    #[test]
    fn barrier_synchronizes_all() {
        use std::cell::Cell;
        let arrived = Cell::new(0usize);
        EventWorld::run(6, |comm| {
            let arrived = &arrived;
            async move {
                arrived.set(arrived.get() + 1);
                comm.barrier().await.unwrap();
                assert_eq!(arrived.get(), 6);
            }
        });
    }

    #[test]
    fn barriers_are_reusable_across_generations() {
        EventWorld::run(5, |comm| async move {
            for _ in 0..10 {
                comm.barrier().await.unwrap();
            }
        });
    }

    #[test]
    fn vectored_roundtrip_gathers_and_scatters() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                let src: Vec<u8> = (0..16).collect();
                let spans = [IoSpan::new(12, 4), IoSpan::new(2, 3)];
                comm.send_vectored(&src, &spans, 1, Tag(0)).await.unwrap();
                vec![]
            } else {
                let mut dst = [0xEEu8; 10];
                let spans = [IoSpan::new(0, 4), IoSpan::new(6, 3)];
                let n = comm.recv_scattered(&mut dst, &spans, 0, Tag(0)).await.unwrap();
                assert_eq!(n, 7);
                dst.to_vec()
            }
        });
        assert_eq!(out.results[1], vec![12, 13, 14, 15, 0xEE, 0xEE, 2, 3, 4, 0xEE]);
        assert!(out.traffic.is_balanced());
        assert_eq!(out.traffic.total_msgs(), 2);
        assert_eq!(out.traffic.total_envelopes(), 1);
        assert_eq!(out.traffic.total_bytes(), 7);
    }

    #[test]
    fn vectored_truncation_checked_against_span_total() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                comm.send(&[0u8; 9], 1, Tag(0)).await.unwrap();
                Ok(0)
            } else {
                let mut dst = [0u8; 32];
                let spans = [IoSpan::new(0, 4), IoSpan::new(8, 4)];
                comm.recv_scattered(&mut dst, &spans, 0, Tag(0)).await.map(|_| 0)
            }
        });
        assert_eq!(out.results[1], Err(CommError::Truncation { capacity: 8, incoming: 9 }));
    }

    #[test]
    fn recv_timeout_expires_on_virtual_clock() {
        let out = EventWorld::run(2, |comm| async move {
            let mut buf = [0u8; 1];
            if comm.rank() == 0 {
                let t0 = comm.now_ns();
                let err = comm
                    .recv_timeout(&mut buf, 1, Tag(0), Duration::from_millis(40))
                    .await
                    .unwrap_err();
                // The clock jumped straight to the deadline — no real sleep.
                assert!(comm.now_ns() - t0 >= 40_000_000);
                comm.send(&[0], 1, Tag(1)).await.unwrap();
                err
            } else {
                comm.recv(&mut buf, 0, Tag(1)).await.unwrap();
                CommError::Timeout { peer: 99 } // placeholder
            }
        });
        assert_eq!(out.results[0], CommError::Timeout { peer: 1 });
        // The world's elapsed virtual time is exactly the one deadline jump.
        assert_eq!(out.elapsed, Duration::from_millis(40));
    }

    #[test]
    fn recv_timeout_delivers_message_arriving_in_time() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                comm.send(&[42], 1, Tag(7)).await.unwrap();
                0
            } else {
                let mut buf = [0u8; 1];
                comm.recv_timeout(&mut buf, 0, Tag(7), Duration::from_secs(10)).await.unwrap();
                buf[0]
            }
        });
        assert_eq!(out.results[1], 42);
        // Delivery beat the deadline, so the clock never had to move.
        assert_eq!(out.elapsed, Duration::ZERO);
    }

    #[test]
    fn recv_from_exited_rank_fails_instead_of_hanging() {
        let out = EventWorld::run(3, |comm| async move {
            if comm.rank() == 1 {
                return Ok(0); // exits immediately, sends nothing
            }
            let mut buf = [0u8; 1];
            comm.recv(&mut buf, 1, Tag(0)).await.map(|_| 1)
        });
        assert_eq!(out.results[0], Err(CommError::PeerFailed { rank: 1 }));
        assert_eq!(out.results[2], Err(CommError::PeerFailed { rank: 1 }));
    }

    #[test]
    fn messages_sent_before_exit_are_still_delivered() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                comm.send(&[1], 1, Tag(0)).await.unwrap();
                comm.send(&[2], 1, Tag(0)).await.unwrap();
                vec![]
            } else {
                // Yield until rank 0 has exited, so the deliveries genuinely
                // race the exited flag.
                let mut buf = [0u8; 1];
                while comm.recv_timeout(&mut buf, 0, Tag(1), Duration::from_millis(1)).await.is_ok()
                {
                }
                let mut got = Vec::new();
                for _ in 0..2 {
                    comm.recv(&mut buf, 0, Tag(0)).await.unwrap();
                    got.push(buf[0]);
                }
                assert_eq!(
                    comm.recv(&mut buf, 0, Tag(0)).await.unwrap_err(),
                    CommError::PeerFailed { rank: 0 }
                );
                got
            }
        });
        assert_eq!(out.results[1], vec![1, 2]);
    }

    #[test]
    fn barrier_after_peer_exit_fails_instead_of_hanging() {
        let out = EventWorld::run(3, |comm| async move {
            if comm.rank() == 2 {
                return Ok(());
            }
            comm.barrier().await
        });
        assert_eq!(out.results[0], Err(CommError::PeerFailed { rank: 2 }));
        assert_eq!(out.results[1], Err(CommError::PeerFailed { rank: 2 }));
    }

    #[test]
    fn nonblocking_posts_complete_in_post_order() {
        let out = EventWorld::run(2, |comm| async move {
            if comm.rank() == 0 {
                for i in 0..4u8 {
                    let p = comm.isend(&[i], 1, Tag(7)).unwrap();
                    comm.wait_send(p).await.unwrap();
                }
                vec![]
            } else {
                let pendings: Vec<_> = (0..4).map(|_| comm.irecv(1, 0, Tag(7)).unwrap()).collect();
                let mut got = Vec::new();
                for p in pendings {
                    let mut b = [0u8; 1];
                    comm.wait_recv(p, &mut b).await.unwrap();
                    got.push(b[0]);
                }
                got
            }
        });
        assert_eq!(out.results[1], vec![0, 1, 2, 3]);
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let res = catch_unwind(AssertUnwindSafe(|| {
            EventWorld::run(2, |comm| async move {
                // Both ranks receive a message nobody will ever send.
                let mut buf = [0u8; 1];
                let _ = comm.recv(&mut buf, 1 - comm.rank(), Tag(0)).await;
            })
        }));
        let payload = res.unwrap_err();
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
    }

    #[test]
    fn panic_in_one_rank_propagates() {
        let res = catch_unwind(AssertUnwindSafe(|| {
            EventWorld::run(3, |comm| async move {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                let mut buf = [0u8; 1];
                let _ = comm.recv(&mut buf, 1, Tag(0)).await;
            })
        }));
        assert!(res.is_err());
    }

    #[test]
    fn now_ns_is_monotone_and_runs_are_deterministic() {
        let run = || {
            EventWorld::run(4, |comm| async move {
                let a = comm.now_ns();
                comm.barrier().await.unwrap();
                let mut buf = [0u8; 1];
                let right = crate::rank::ring_right(comm.rank(), comm.size());
                let left = crate::rank::ring_left(comm.rank(), comm.size());
                comm.sendrecv(&[comm.rank() as u8], right, Tag(0), &mut buf, left, Tag(0))
                    .await
                    .unwrap();
                let b = comm.now_ns();
                assert!(b >= a);
                (buf[0], b)
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.results, b.results);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn megascale_fanout_world() {
        // A quick structural check that worlds far beyond thread capacity
        // run: a 2048-rank binomial-style relay where every rank forwards to
        // 2·rank+1 and 2·rank+2.
        let n = 2048;
        let out = EventWorld::run(n, |comm| async move {
            let me = comm.rank();
            let mut buf = [0u8; 8];
            if me != 0 {
                comm.recv(&mut buf, (me - 1) / 2, Tag(1)).await.unwrap();
            }
            for child in [2 * me + 1, 2 * me + 2] {
                if child < comm.size() {
                    comm.send(&buf, child, Tag(1)).await.unwrap();
                }
            }
            me
        });
        assert_eq!(out.traffic.total_msgs(), (n - 1) as u64);
        assert!(out.traffic.is_balanced());
    }
}
