//! Pure decision logic of the sync-layer protocols, factored out of
//! [`crate::mailbox`] and the `fast-sync` lock backend so that an external
//! model checker can explore exactly the predicates the runtime executes.
//!
//! Everything here is a total function over plain integers — no atomics, no
//! blocking, no I/O. The runtime calls these at its decision points
//! (annotated in `sync_fast.rs` / `mailbox.rs`); `schedcheck`'s interleaving
//! explorer drives the same functions from abstract states, so a checked
//! property ("the swap-release protocol never loses a waiter") speaks about
//! the deployed code, not a hand-copied transcription of it.

/// Lock word: free.
pub const UNLOCKED: u32 = 0;
/// Lock word: held, no contention observed.
pub const LOCKED: u32 = 1;
/// Lock word: held with waiters possible — the next release must wake one.
pub const CONTENDED: u32 = 2;

/// Did a slow-path `swap(CONTENDED)` acquire the lock? The swap observes the
/// previous word: finding [`UNLOCKED`] means we took the lock (conservatively
/// leaving it marked contended — at worst one spurious unpark later); any
/// other value means the holder is still inside.
#[inline]
#[must_use]
pub fn slow_path_acquired(prev: u32) -> bool {
    prev == UNLOCKED
}

/// Must a release (`swap(UNLOCKED)`) wake a parked waiter? Only when the
/// word it replaced said contention was observed: an uncontended unlock
/// performs no wakeup at all.
#[inline]
#[must_use]
pub fn release_needs_wake(prev: u32) -> bool {
    prev == CONTENDED
}

/// Must a mailbox push notify the slot's condvar? Only when a receiver is
/// actually blocked on the slot — the notify-skip optimization that makes
/// the uncontended send path syscall-free. The waiter count is read under
/// the slot lock, so a receiver that has started blocking is either already
/// counted (we notify) or has not yet released the lock (it will observe our
/// queued message before sleeping).
#[inline]
#[must_use]
pub fn push_should_notify(waiters: usize) -> bool {
    waiters > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_path_acquires_only_from_unlocked() {
        assert!(slow_path_acquired(UNLOCKED));
        assert!(!slow_path_acquired(LOCKED));
        assert!(!slow_path_acquired(CONTENDED));
    }

    #[test]
    fn release_wakes_only_on_contention() {
        assert!(!release_needs_wake(UNLOCKED));
        assert!(!release_needs_wake(LOCKED));
        assert!(release_needs_wake(CONTENDED));
    }

    #[test]
    fn push_notifies_only_with_waiters() {
        assert!(!push_should_notify(0));
        assert!(push_should_notify(1));
        assert!(push_should_notify(7));
    }
}
