//! Pure decision logic of the sync-layer and event-reactor protocols,
//! factored out of [`crate::mailbox`], the `fast-sync` lock backend, and the
//! [`crate::event_comm`] reactor so that an external model checker can
//! explore exactly the predicates the runtime executes.
//!
//! Everything here is a total function over plain integers — no atomics, no
//! blocking, no I/O. The runtime calls these at its decision points
//! (annotated in `sync_fast.rs` / `mailbox.rs` / `event_comm.rs`);
//! `schedcheck`'s interleaving explorer drives the same functions from
//! abstract states, so a checked property ("the swap-release protocol never
//! loses a waiter", "the run-queue dedup flag never drops a wake") speaks
//! about the deployed code, not a hand-copied transcription of it.

/// Lock word: free.
pub const UNLOCKED: u32 = 0;
/// Lock word: held, no contention observed.
pub const LOCKED: u32 = 1;
/// Lock word: held with waiters possible — the next release must wake one.
pub const CONTENDED: u32 = 2;

/// Did a slow-path `swap(CONTENDED)` acquire the lock? The swap observes the
/// previous word: finding [`UNLOCKED`] means we took the lock (conservatively
/// leaving it marked contended — at worst one spurious unpark later); any
/// other value means the holder is still inside.
#[inline]
#[must_use]
pub fn slow_path_acquired(prev: u32) -> bool {
    prev == UNLOCKED
}

/// Must a release (`swap(UNLOCKED)`) wake a parked waiter? Only when the
/// word it replaced said contention was observed: an uncontended unlock
/// performs no wakeup at all.
#[inline]
#[must_use]
pub fn release_needs_wake(prev: u32) -> bool {
    prev == CONTENDED
}

/// Must a mailbox push notify the slot's condvar? Only when a receiver is
/// actually blocked on the slot — the notify-skip optimization that makes
/// the uncontended send path syscall-free. The waiter count is read under
/// the slot lock, so a receiver that has started blocking is either already
/// counted (we notify) or has not yet released the lock (it will observe our
/// queued message before sleeping).
#[inline]
#[must_use]
pub fn push_should_notify(waiters: usize) -> bool {
    waiters > 0
}

/// `watching` sentinel: the task is not parked on any receive.
pub const WATCH_NONE: usize = usize::MAX;
/// `watching` sentinel: the task holds parked receives from more than one
/// source at once (e.g. a `join!` of two receives), so it conservatively
/// wakes on any exit. Single-source receives — every built-in collective —
/// never degrade to this.
pub const WATCH_ANY: usize = usize::MAX - 1;

/// Must a wake enqueue the task on the reactor run queue? Only when the
/// task's `Cell` dedup flag was still clear: a burst of deliveries to one
/// task costs one poll, and the flag is cleared at *pop* time — before the
/// poll runs — so a wake issued during the poll (including the task's own
/// budget-exhausted self-requeue) is never lost. Clearing the flag after
/// the poll instead would drop exactly that self-requeue; schedcheck's
/// `RunQueueModel` proves the deployed ordering is the only safe one.
#[inline]
#[must_use]
pub fn wake_should_enqueue(already_queued: bool) -> bool {
    !already_queued
}

/// Must a rank's exit wake a task whose receive is parked with `watching`
/// set to `watching`? Only a task watching exactly the exiting rank — or
/// conservatively watching every source ([`WATCH_ANY`]) — can observe the
/// departure; waking anyone else is wasted work the targeted-wake design
/// exists to avoid (O(P) instead of O(P²) exit work per sweep). Skipping a
/// watcher, however, strands it forever; schedcheck's `RunQueueModel` drills
/// that mutation.
#[inline]
#[must_use]
pub fn exit_wakes_watch(watching: usize, exited: usize) -> bool {
    watching == exited || watching == WATCH_ANY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_path_acquires_only_from_unlocked() {
        assert!(slow_path_acquired(UNLOCKED));
        assert!(!slow_path_acquired(LOCKED));
        assert!(!slow_path_acquired(CONTENDED));
    }

    #[test]
    fn release_wakes_only_on_contention() {
        assert!(!release_needs_wake(UNLOCKED));
        assert!(!release_needs_wake(LOCKED));
        assert!(release_needs_wake(CONTENDED));
    }

    #[test]
    fn push_notifies_only_with_waiters() {
        assert!(!push_should_notify(0));
        assert!(push_should_notify(1));
        assert!(push_should_notify(7));
    }

    #[test]
    fn wake_enqueues_only_when_not_already_queued() {
        assert!(wake_should_enqueue(false));
        assert!(!wake_should_enqueue(true));
    }

    #[test]
    fn exit_wakes_exact_watcher_and_any_watcher_only() {
        assert!(exit_wakes_watch(3, 3));
        assert!(exit_wakes_watch(WATCH_ANY, 3));
        assert!(!exit_wakes_watch(WATCH_NONE, 3));
        assert!(!exit_wakes_watch(4, 3));
    }
}
