//! # testkit — zero-dependency test infrastructure for the workspace
//!
//! This environment builds with **no registry access**, so the usual
//! ecosystem crates (`rand`, `proptest`, `criterion`) are unavailable.
//! `testkit` provides the minimal in-tree replacements the workspace's
//! tests and benchmarks need:
//!
//! * [`rng`] — deterministic PRNGs: SplitMix64 (seeding/stream-splitting)
//!   and xoshiro256** (the workhorse generator), behind a small
//!   [`rng::Rng`] trait;
//! * [`prop`] — a property-testing harness: composable strategies, a
//!   per-property case budget, greedy shrinking for integers/floats/vectors/
//!   tuples, and **seed reporting** — a failing property prints a
//!   `TESTKIT_SEED` value that deterministically replays the failing case;
//! * [`bench`] — a wall-clock micro-benchmark harness for
//!   `harness = false` bench targets: warmup + N timed iterations,
//!   median/p10/p90 statistics, substring filters, and `--json` output
//!   feeding the `results/` flow. [`bench_main!`] replaces
//!   `criterion_group!`/`criterion_main!`.
//!
//! Everything here is plain `std`; the crate must keep compiling offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bench;
pub mod prop;
pub mod rng;

pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
