//! Deterministic pseudo-random number generation.
//!
//! Two small, well-studied generators, implemented from their reference
//! algorithms (Steele/Lea/Flood's SplitMix64 and Blackman/Vigna's
//! xoshiro256**):
//!
//! * [`SplitMix64`] — a 64-bit state mixer, used to seed and to derive
//!   independent per-case seeds from a master seed;
//! * [`Xoshiro256StarStar`] — the workhorse generator behind the property
//!   and bench harnesses.
//!
//! Both are fully deterministic functions of their seed, which is what the
//! property harness's "rerun with the printed seed" contract rests on.

/// Common interface for the in-tree generators.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    ///
    /// Uses 128-bit multiply-shift (Lemire's unbiased-enough reduction for
    /// test workloads; the modulo bias of plain `% bound` is avoided).
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be non-zero");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`; the range must be non-empty.
    fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_u64 needs lo < hi, got {lo}..{hi}");
        let span = hi - lo;
        lo + (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }

    /// Uniform `i64` in `[lo, hi)`; the range must be non-empty.
    fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "gen_range_i64 needs lo < hi, got {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u128;
        let off = (((self.next_u64() as u128) * span) >> 64) as i128;
        (lo as i128 + off) as i64
    }

    /// Uniform `f64` in `[lo, hi)` (53-bit mantissa resolution).
    fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range_f64 needs lo < hi, got {lo}..{hi}");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    /// A fair coin flip.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fill `buf` with random bytes.
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// SplitMix64: one 64-bit word of state, period 2^64.
///
/// Its statistical quality is modest but its *stream-splitting* property is
/// exactly what seed derivation needs: successive outputs are well-decorrelated
/// even for adjacent seeds, so `case_seed = SplitMix64(master).nth(k)` gives
/// independent-looking streams per property case.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: 256 bits of state, period 2^256 − 1, excellent statistical
/// quality for non-cryptographic use. State is initialized from the seed via
/// SplitMix64, as the algorithm's authors recommend (an all-zero state is
/// thereby impossible for any seed).
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Generator whose state is expanded from `seed` with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain
        // reference implementation (Vigna, prng.di.unimi.it).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256StarStar::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256StarStar::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed must give the same stream");
        let c: Vec<u64> = {
            let mut r = Xoshiro256StarStar::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "adjacent seeds must diverge");
    }

    #[test]
    fn gen_index_stays_in_bounds_and_covers() {
        let mut r = Xoshiro256StarStar::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = r.gen_index(10);
            assert!(i < 10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets of a small bound get hit");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Xoshiro256StarStar::new(99);
        for _ in 0..1000 {
            let v = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
            let v = r.gen_range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            let v = r.gen_range_f64(1.0, 2.0);
            assert!((1.0..2.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut r = Xoshiro256StarStar::new(3);
        for len in 0..35 {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "16+ random bytes all zero");
            }
        }
    }
}
