//! A minimal property-testing harness: randomized inputs from composable
//! [`Strategy`] values, a per-property case budget, **seed reporting** on
//! failure, and greedy input shrinking for integers, floats and vectors.
//!
//! # Model
//!
//! A property is an ordinary function from a generated input to
//! `Result<(), String>`; panics inside the property (e.g. a failed
//! `assert_eq!` deep inside a rank closure) are caught and treated as
//! failures too. The runner derives one independent seed per case from a
//! master seed; when a case fails, the input is greedily shrunk and the
//! harness panics with the **case seed**, so the exact failing case can be
//! replayed in isolation:
//!
//! ```text
//! property 'tuned_bcast_correct' failed (case 17 of 48).
//!   rerun just this case with: TESTKIT_SEED=0x9a3c... cargo test ...
//! ```
//!
//! Setting the `TESTKIT_SEED` environment variable makes every `check` call
//! run exactly that one case — reproducing the failure deterministically
//! (the generators in [`crate::rng`] are pure functions of the seed).
//!
//! # Example (and proof of the replay contract)
//!
//! ```
//! use testkit::prop::{self, Strategy};
//!
//! // A property that is false for large values.
//! let prop = |v: &u64| if *v < 1000 { Ok(()) } else { Err(format!("{v} too big")) };
//!
//! let failure = prop::run(prop::Config::cases(64), &prop::any_u64(), &prop)
//!     .expect_err("property must fail");
//! // The reported seed replays the same failing case:
//! let replay = prop::run_seed(failure.seed, &prop::any_u64(), &prop)
//!     .expect_err("replay must fail again");
//! assert_eq!(replay.seed, failure.seed);
//! // ...and shrinking drove the input to the minimal counterexample.
//! assert_eq!(failure.input, "1000");
//! ```

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{Rng, SplitMix64, Xoshiro256StarStar};

/// Outcome type for properties: `Ok(())` passes, `Err(reason)` fails.
pub type PropResult = Result<(), String>;

/// How a property run is budgeted.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Upper bound on shrink attempts once a case fails.
    pub max_shrink_steps: u32,
}

impl Config {
    /// Config running `cases` random cases (with the default shrink budget).
    pub fn cases(cases: u32) -> Self {
        Self { cases, max_shrink_steps: 16_384 }
    }
}

/// A generator-plus-shrinker for values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Produce one random value.
    fn generate(&self, rng: &mut Xoshiro256StarStar) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. An empty vector
    /// means the value is fully shrunk.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

/// A minimal counterexample, with everything needed to replay it.
#[derive(Debug)]
pub struct Failure {
    /// Case seed: `run_seed(seed, ...)` regenerates the original input.
    pub seed: u64,
    /// Which case (0-based) out of the budget failed.
    pub case: u32,
    /// `Debug` rendering of the *shrunk* failing input.
    pub input: String,
    /// The property's error message (or the caught panic payload).
    pub error: String,
}

/// Check a named property and panic with a replayable report on failure.
///
/// This is the entry point test functions use. `TESTKIT_SEED` (hex with
/// optional `0x` prefix, or decimal) overrides the whole run with a single
/// deterministic case.
pub fn check<S, P>(name: &str, config: Config, strategy: &S, property: P)
where
    S: Strategy,
    P: Fn(&S::Value) -> PropResult,
{
    let outcome = match seed_override() {
        Some(seed) => run_seed(seed, strategy, &property),
        None => run(config, strategy, &property),
    };
    if let Err(f) = outcome {
        panic!(
            "property '{name}' failed (case {case} of {cases}).\n  \
             rerun just this case with: TESTKIT_SEED={seed:#018x} cargo test {name}\n  \
             failing input (shrunk): {input}\n  \
             error: {error}",
            case = f.case,
            cases = config.cases,
            seed = f.seed,
            input = f.input,
            error = f.error,
        );
    }
}

/// Run the property over `config.cases` random cases; `Err` carries the
/// shrunk counterexample of the first failing case.
pub fn run<S, P>(config: Config, strategy: &S, property: &P) -> Result<(), Failure>
where
    S: Strategy,
    P: Fn(&S::Value) -> PropResult,
{
    let mut seeder = SplitMix64::new(master_seed());
    for case in 0..config.cases {
        let case_seed = seeder.next_u64();
        run_case(case_seed, case, config.max_shrink_steps, strategy, property)?;
    }
    Ok(())
}

/// Run exactly one case from `seed` (the replay path).
pub fn run_seed<S, P>(seed: u64, strategy: &S, property: &P) -> Result<(), Failure>
where
    S: Strategy,
    P: Fn(&S::Value) -> PropResult,
{
    run_case(seed, 0, Config::cases(1).max_shrink_steps, strategy, property)
}

fn run_case<S, P>(
    case_seed: u64,
    case: u32,
    max_shrink_steps: u32,
    strategy: &S,
    property: &P,
) -> Result<(), Failure>
where
    S: Strategy,
    P: Fn(&S::Value) -> PropResult,
{
    let mut rng = Xoshiro256StarStar::new(case_seed);
    let value = strategy.generate(&mut rng);
    let Some(error) = fails(property, &value) else {
        return Ok(());
    };
    let (value, error) = shrink_failure(strategy, property, value, error, max_shrink_steps);
    Err(Failure { seed: case_seed, case, input: format!("{value:?}"), error })
}

/// Greedy shrink: repeatedly adopt the first candidate that still fails,
/// until no candidate fails or the step budget runs out.
fn shrink_failure<S, P>(
    strategy: &S,
    property: &P,
    mut value: S::Value,
    mut error: String,
    max_steps: u32,
) -> (S::Value, String)
where
    S: Strategy,
    P: Fn(&S::Value) -> PropResult,
{
    let mut steps = 0u32;
    'progress: loop {
        for candidate in strategy.shrink(&value) {
            if steps >= max_steps {
                break 'progress;
            }
            steps += 1;
            if let Some(e) = fails(property, &candidate) {
                value = candidate;
                error = e;
                continue 'progress;
            }
        }
        break;
    }
    (value, error)
}

/// `Some(message)` when the property fails on `value` (by `Err` or panic).
fn fails<V, P>(property: &P, value: &V) -> Option<String>
where
    P: Fn(&V) -> PropResult,
{
    match catch_unwind(AssertUnwindSafe(|| property(value))) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_owned()
    }
}

fn seed_override() -> Option<u64> {
    let raw = std::env::var("TESTKIT_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("TESTKIT_SEED={raw:?} is not a decimal or 0x-hex u64"),
    }
}

/// Master seed for the whole run: fixed (deterministic CI) unless
/// `TESTKIT_MASTER_SEED` asks for a different exploration stream.
fn master_seed() -> u64 {
    match std::env::var("TESTKIT_MASTER_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => raw.parse(),
            }
            .unwrap_or_else(|_| panic!("TESTKIT_MASTER_SEED={raw:?} is not a u64"))
        }
        // No registry, no clock: a fixed master seed keeps CI deterministic;
        // vary it explicitly to explore fresh inputs.
        Err(_) => 0x5EED_CAFE_7E57_0001,
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Integer ranges `[lo, hi)`, shrinking toward `lo`.
macro_rules! int_range_strategy {
    ($name:ident, $fn_name:ident, $ty:ty, $gen:ident) => {
        /// Strategy for a half-open integer range, shrinking toward the low end.
        #[derive(Debug, Clone)]
        pub struct $name {
            lo: $ty,
            hi: $ty,
        }

        /// Uniform values in `range`, shrinking toward `range.start`.
        pub fn $fn_name(range: Range<$ty>) -> $name {
            assert!(range.start < range.end, "empty range {range:?}");
            $name { lo: range.start, hi: range.end }
        }

        impl Strategy for $name {
            type Value = $ty;

            fn generate(&self, rng: &mut Xoshiro256StarStar) -> $ty {
                rng.$gen(self.lo as _, self.hi as _) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                let v = *value;
                let mut out = Vec::new();
                if v > self.lo {
                    // simplest first: the low end, then halving the distance,
                    // then the immediate predecessor
                    out.push(self.lo);
                    let mid = self.lo + (v - self.lo) / 2;
                    if mid != self.lo && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != self.lo && (v - 1) != mid {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    };
}

int_range_strategy!(UsizeRange, usize_range, usize, gen_range_u64);
int_range_strategy!(U8Range, u8_range, u8, gen_range_u64);
int_range_strategy!(U32Range, u32_range, u32, gen_range_u64);
int_range_strategy!(U64Range, u64_range, u64, gen_range_u64);
int_range_strategy!(I64Range, i64_range, i64, gen_range_i64);

/// Full-range `u64`, shrinking toward 0.
#[derive(Debug, Clone)]
pub struct AnyU64;

/// Any `u64`, shrinking toward 0.
pub fn any_u64() -> AnyU64 {
    AnyU64
}

impl Strategy for AnyU64 {
    type Value = u64;

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        rng.next_u64()
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        let mut out = Vec::new();
        if v > 0 {
            out.push(0);
            if v / 2 != 0 {
                out.push(v / 2);
            }
            if v - 1 != 0 && v - 1 != v / 2 {
                out.push(v - 1);
            }
        }
        out
    }
}

/// Full-range `u8`, shrinking toward 0.
#[derive(Debug, Clone)]
pub struct AnyU8;

/// Any `u8`, shrinking toward 0.
pub fn any_u8() -> AnyU8 {
    AnyU8
}

impl Strategy for AnyU8 {
    type Value = u8;

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> u8 {
        rng.next_u64() as u8
    }

    fn shrink(&self, value: &u8) -> Vec<u8> {
        let v = *value;
        let mut out = Vec::new();
        if v > 0 {
            out.push(0);
            if v / 2 != 0 {
                out.push(v / 2);
            }
        }
        out
    }
}

/// Uniform `f64` in `[lo, hi)`, shrinking toward `lo`.
#[derive(Debug, Clone)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` values in `range`, shrinking toward `range.start`.
pub fn f64_range(range: Range<f64>) -> F64Range {
    assert!(range.start < range.end, "empty range {range:?}");
    F64Range { lo: range.start, hi: range.end }
}

impl Strategy for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        rng.gen_range_f64(self.lo, self.hi)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let mut out = Vec::new();
        if v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2.0;
            if mid > self.lo && mid < v {
                out.push(mid);
            }
        }
        out
    }
}

/// Coin flip, shrinking `true → false`.
#[derive(Debug, Clone)]
pub struct AnyBool;

/// Either boolean, shrinking toward `false`.
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> bool {
        rng.gen_bool()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            vec![]
        }
    }
}

/// One of a fixed list of values, shrinking toward earlier entries.
#[derive(Debug, Clone)]
pub struct OneOf<T> {
    options: Vec<T>,
}

/// Uniformly one of `options` (must be non-empty); shrinks toward the
/// first option, so put the "simplest" value first.
pub fn one_of<T: Clone + Debug + PartialEq>(options: Vec<T>) -> OneOf<T> {
    assert!(!options.is_empty(), "one_of needs at least one option");
    OneOf { options }
}

impl<T: Clone + Debug + PartialEq> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> T {
        self.options[rng.gen_index(self.options.len())].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        match self.options.iter().position(|o| o == value) {
            Some(pos) => self.options[..pos].to_vec(),
            None => vec![],
        }
    }
}

/// Vectors of values from an element strategy, with a random length drawn
/// from `[min_len, max_len)`.
#[derive(Debug, Clone)]
pub struct VecOf<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

/// `Vec<S::Value>` with length in `len` and elements from `element`.
///
/// Shrinking first drops chunks of elements (halves, then quarters, …, then
/// single elements, never below the minimum length), then shrinks individual
/// elements in place — the classic list-shrinking order.
pub fn vec_of<S: Strategy>(element: S, len: Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "empty length range {len:?}");
    VecOf { element, min_len: len.start, max_len: len.end }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Xoshiro256StarStar) -> Vec<S::Value> {
        let len = self.min_len + rng.gen_index(self.max_len - self.min_len);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // 1) remove chunks, biggest first
        let mut chunk = len.saturating_sub(self.min_len);
        while chunk >= 1 {
            let mut start = 0;
            while start + chunk <= len {
                if len - chunk >= self.min_len {
                    let mut shorter = Vec::with_capacity(len - chunk);
                    shorter.extend_from_slice(&value[..start]);
                    shorter.extend_from_slice(&value[start + chunk..]);
                    out.push(shorter);
                }
                start += chunk.max(1);
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // 2) shrink elements in place (first shrink candidate of each slot)
        for (i, v) in value.iter().enumerate() {
            for cand in self.element.shrink(v).into_iter().take(2) {
                let mut copy = value.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

/// Tuples of strategies generate tuples of values; shrinking simplifies one
/// component at a time.
macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut Xoshiro256StarStar) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        run(Config::cases(100), &usize_range(0..50), &|v: &usize| {
            if *v < 50 {
                Ok(())
            } else {
                Err("out of range".into())
            }
        })
        .expect("property holds");
    }

    #[test]
    fn failure_reports_seed_and_replay_reproduces() {
        // The acceptance contract: a failing property yields a seed, and
        // re-running with exactly that seed reproduces the failure.
        let strategy = (usize_range(0..1000), vec_of(any_u8(), 0..40));
        let property = |(n, v): &(usize, Vec<u8>)| {
            if *n >= 500 && !v.is_empty() {
                Err(format!("bad combination n={n} len={}", v.len()))
            } else {
                Ok(())
            }
        };
        let failure =
            run(Config::cases(200), &strategy, &property).expect_err("must fail eventually");
        let replay = run_seed(failure.seed, &strategy, &property)
            .expect_err("the reported seed must reproduce the failure");
        assert_eq!(replay.seed, failure.seed);
        assert_eq!(replay.input, failure.input, "replay shrinks to the same input");
    }

    #[test]
    fn shrinking_minimizes_ints_and_vecs() {
        // ints shrink to the smallest failing value
        let failure = run(Config::cases(64), &usize_range(0..10_000), &|v: &usize| {
            if *v < 777 {
                Ok(())
            } else {
                Err("too big".into())
            }
        })
        .expect_err("must fail");
        assert_eq!(failure.input, "777", "greedy shrink finds the boundary");

        // vecs shrink to the shortest failing length
        let failure = run(Config::cases(64), &vec_of(any_u8(), 0..200), &|v: &Vec<u8>| {
            if v.len() < 5 {
                Ok(())
            } else {
                Err("too long".into())
            }
        })
        .expect_err("must fail");
        let shrunk: Vec<u8> = {
            // parse "[a, b, …]" back just by counting commas — the exact
            // elements do not matter, only the minimal length
            let inner = failure.input.trim_start_matches('[').trim_end_matches(']');
            inner.split(',').filter(|s| !s.trim().is_empty()).map(|_| 0).collect()
        };
        assert_eq!(shrunk.len(), 5, "minimal failing vector length");
    }

    #[test]
    fn panics_are_caught_as_failures() {
        let failure = run(Config::cases(16), &u8_range(0..20), &|v: &u8| {
            assert!(*v < 200, "assert inside property");
            if *v >= 10 {
                panic!("boom at {v}");
            }
            Ok(())
        })
        .expect_err("panicking property must fail");
        assert!(failure.error.contains("boom"), "panic payload surfaced: {}", failure.error);
        assert_eq!(failure.input, "10", "shrunk to the smallest panicking value");
    }

    #[test]
    fn tuple_and_one_of_shrink_componentwise() {
        let strategy = (one_of(vec![false, true]), i64_range(-50..50));
        let failure = run(Config::cases(128), &strategy, &|&(flag, v): &(bool, i64)| {
            if flag && v > 10 {
                Err("flagged large".into())
            } else {
                Ok(())
            }
        })
        .expect_err("must fail");
        assert_eq!(failure.input, "(true, 11)", "both components minimized");
    }

    #[test]
    fn deterministic_master_seed_gives_stable_runs() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            let _ = run(Config::cases(10), &any_u64(), &|v: &u64| {
                seen.borrow_mut().push(*v);
                Ok(())
            });
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
