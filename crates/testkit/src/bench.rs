//! A wall-clock micro-benchmark harness for `harness = false` bench targets.
//!
//! The shape mirrors the Criterion subset this workspace used: a harness
//! owns named groups, a group owns named benchmarks, and each benchmark's
//! closure drives a [`Bencher`] whose `iter` runs the measured function.
//! Per benchmark the harness runs `warmup` untimed iterations followed by
//! `samples` timed iterations and reports **median / p10 / p90 / mean**
//! nanoseconds (medians are robust against scheduler noise, which matters
//! for thread-spawning workloads like `ThreadWorld::run`).
//!
//! ## CLI (what `cargo bench -- <args>` passes through)
//!
//! * `<filter>...` — run only benchmarks whose `group/id` contains any
//!   filter substring;
//! * `--samples N`, `--warmup N` — override the measurement budget;
//! * `--json PATH` — additionally write results as JSON (the same flow that
//!   feeds `results/*.csv`: one record per benchmark, machine-readable);
//! * `--quick` — 1 warmup + 3 samples, for smoke-testing the bench tree;
//! * `--help` — print usage and exit 0;
//! * `--bench`/`--test` (passed by cargo itself) — accepted and ignored.
//!
//! ```no_run
//! fn my_bench(h: &mut testkit::bench::Harness) {
//!     let mut g = h.group("sums");
//!     g.bench("naive", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//! }
//! testkit::bench_main!(my_bench);
//! ```

use std::time::Instant;

/// One benchmark's collected measurements, in nanoseconds.
#[derive(Debug, Clone)]
pub struct Record {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median of the timed samples.
    pub median_ns: f64,
    /// 10th percentile.
    pub p10_ns: f64,
    /// 90th percentile.
    pub p90_ns: f64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Optional throughput denominator (bytes per iteration), when declared.
    pub bytes_per_iter: Option<u64>,
}

impl Record {
    /// Throughput in MiB/s when `bytes_per_iter` was declared.
    pub fn mib_per_s(&self) -> Option<f64> {
        self.bytes_per_iter.map(|b| {
            let bytes_per_ns = b as f64 / self.median_ns.max(1e-9);
            bytes_per_ns * 1e9 / (1u64 << 20) as f64
        })
    }
}

/// Runs the measured closure and accumulates per-iteration times.
pub struct Bencher {
    warmup: usize,
    samples: usize,
    times_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`: `warmup` untimed runs, then one timed run per sample.
    /// The closure's return value is passed through a black box so the
    /// optimizer cannot delete the computation.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        self.times_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.times_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

/// Settings parsed from the command line.
#[derive(Debug, Clone)]
struct Options {
    filters: Vec<String>,
    samples: usize,
    warmup: usize,
    json_path: Option<String>,
    criterion_dir: Option<String>,
    list_only: bool,
    quick: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            filters: Vec::new(),
            samples: 20,
            warmup: 3,
            json_path: None,
            criterion_dir: None,
            list_only: false,
            quick: false,
        }
    }
}

const USAGE: &str = "\
Usage: <bench-binary> [OPTIONS] [FILTER]...

Runs the in-tree testkit micro-benchmarks. With FILTER arguments, only
benchmarks whose 'group/id' contains one of the substrings are run.

Options:
      --samples <N>   timed iterations per benchmark (default 20)
      --warmup <N>    untimed warmup iterations per benchmark (default 3)
      --json <PATH>   also write results as JSON to PATH
      --criterion-dir <DIR>
                      also write Criterion-compatible estimates
                      (<DIR>/<group>/<id>/new/estimates.json), so existing
                      Criterion tooling can consume the results
      --quick         shorthand for --warmup 1 --samples 3
      --list          list benchmark names without running them
      --bench, --test accepted (passed by cargo) and ignored
  -h, --help          print this help and exit";

/// Collects groups and benchmarks, runs them, and reports.
pub struct Harness {
    options: Options,
    records: Vec<Record>,
}

impl Harness {
    /// Build a harness from `std::env::args`. Prints usage and exits 0 on
    /// `--help`; exits 1 on unknown `--flags`.
    pub fn from_args() -> Self {
        let mut options = Options::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut take_num = |name: &str| -> usize {
                args.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die(&format!("{name} needs a numeric argument")))
            };
            match arg.as_str() {
                "-h" | "--help" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                "--samples" => options.samples = take_num("--samples").max(1),
                "--warmup" => options.warmup = take_num("--warmup"),
                "--json" => {
                    options.json_path =
                        Some(args.next().unwrap_or_else(|| die("--json needs a path")))
                }
                "--criterion-dir" => {
                    options.criterion_dir =
                        Some(args.next().unwrap_or_else(|| die("--criterion-dir needs a path")))
                }
                "--quick" => {
                    options.warmup = 1;
                    options.samples = 3;
                    options.quick = true;
                }
                "--list" => options.list_only = true,
                // cargo bench/test pass these to harness=false targets
                "--bench" | "--test" | "--nocapture" => {}
                flag if flag.starts_with("--") => die(&format!("unknown flag {flag:?}\n{USAGE}")),
                filter => options.filters.push(filter.to_owned()),
            }
        }
        Self { options, records: Vec::new() }
    }

    /// Harness with explicit settings (for tests of the harness itself).
    pub fn with_budget(warmup: usize, samples: usize) -> Self {
        Self {
            options: Options { samples: samples.max(1), warmup, ..Options::default() },
            records: Vec::new(),
        }
    }

    /// Open a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group { harness: self, name: name.to_owned(), samples_override: None, bytes_per_iter: None }
    }

    /// All records measured so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Print the summary (and write JSON when requested). Call last.
    pub fn finish(self) {
        if let Some(path) = &self.options.json_path {
            let json = records_to_json(&self.records);
            if let Err(e) = std::fs::write(path, json) {
                die(&format!("cannot write --json {path}: {e}"));
            }
            eprintln!("wrote {} benchmark records to {path}", self.records.len());
        }
        if let Some(dir) = &self.options.criterion_dir {
            if let Err(e) = write_criterion_dir(std::path::Path::new(dir), &self.records) {
                die(&format!("cannot write --criterion-dir {dir}: {e}"));
            }
            eprintln!(
                "wrote Criterion estimates for {} benchmarks under {dir}",
                self.records.len()
            );
        }
        if self.records.is_empty() && !self.options.list_only {
            eprintln!("no benchmarks matched the filter(s)");
        }
    }

    fn run_one(
        &mut self,
        group: &str,
        id: &str,
        samples_override: Option<usize>,
        bytes_per_iter: Option<u64>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let full = format!("{group}/{id}");
        if !self.options.filters.is_empty()
            && !self.options.filters.iter().any(|pat| full.contains(pat.as_str()))
        {
            return;
        }
        if self.options.list_only {
            println!("{full}");
            return;
        }
        // `--quick` wins over per-group budgets: it exists to smoke the tree.
        let samples = if self.options.quick {
            self.options.samples
        } else {
            samples_override.unwrap_or(self.options.samples)
        };
        let mut bencher = Bencher { warmup: self.options.warmup, samples, times_ns: Vec::new() };
        f(&mut bencher);
        assert!(!bencher.times_ns.is_empty(), "benchmark {full} never called Bencher::iter");
        let record = summarize(group, id, &mut bencher.times_ns, bytes_per_iter);
        print_record(&record);
        self.records.push(record);
    }
}

/// A named group of benchmarks sharing throughput/budget settings.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    samples_override: Option<usize>,
    bytes_per_iter: Option<u64>,
}

impl Group<'_> {
    /// Cap the timed samples for the following benchmarks of this group
    /// (expensive workloads keep bench wall-time bounded this way).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples_override = Some(samples.max(1));
        self
    }

    /// Declare per-iteration payload bytes for the following benchmarks, so
    /// the report can show MiB/s.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.bytes_per_iter = Some(bytes);
        self
    }

    /// Measure one benchmark under this group.
    pub fn bench<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.harness.run_one(&self.name, id, self.samples_override, self.bytes_per_iter, &mut f);
        self
    }
}

fn summarize(group: &str, id: &str, times_ns: &mut [f64], bytes_per_iter: Option<u64>) -> Record {
    times_ns.sort_by(f64::total_cmp);
    let n = times_ns.len();
    let pct = |p: f64| -> f64 {
        // nearest-rank on the sorted samples
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        times_ns[rank - 1]
    };
    let median =
        if n % 2 == 1 { times_ns[n / 2] } else { (times_ns[n / 2 - 1] + times_ns[n / 2]) / 2.0 };
    Record {
        group: group.to_owned(),
        id: id.to_owned(),
        median_ns: median,
        p10_ns: pct(0.10),
        p90_ns: pct(0.90),
        mean_ns: times_ns.iter().sum::<f64>() / n as f64,
        samples: n,
        bytes_per_iter,
    }
}

fn print_record(r: &Record) {
    let throughput = match r.mib_per_s() {
        Some(t) => format!("  {t:>10.1} MiB/s"),
        None => String::new(),
    };
    println!(
        "{:<44} median {:>12}  p10 {:>12}  p90 {:>12}  ({} samples){}",
        format!("{}/{}", r.group, r.id),
        fmt_ns(r.median_ns),
        fmt_ns(r.p10_ns),
        fmt_ns(r.p90_ns),
        r.samples,
        throughput,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Render records as a JSON document (hand-rolled: no serde in the tree).
fn records_to_json(records: &[Record]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": {group:?}, \"id\": {id:?}, \"median_ns\": {median}, \
             \"p10_ns\": {p10}, \"p90_ns\": {p90}, \"mean_ns\": {mean}, \
             \"samples\": {samples}, \"bytes_per_iter\": {bytes}}}{comma}\n",
            group = r.group,
            id = r.id,
            median = r.median_ns,
            p10 = r.p10_ns,
            p90 = r.p90_ns,
            mean = r.mean_ns,
            samples = r.samples,
            bytes = r.bytes_per_iter.map_or("null".to_owned(), |b| b.to_string()),
            comma = if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write records in Criterion's on-disk layout:
/// `<dir>/<group>/<id>/new/estimates.json`, one directory per benchmark,
/// with `point_estimate` values in nanoseconds. Path separators inside
/// group/id names are flattened (as Criterion itself does) so every
/// benchmark maps to exactly one directory level each for group and id.
pub fn write_criterion_dir(dir: &std::path::Path, records: &[Record]) -> std::io::Result<()> {
    for r in records {
        let bench_dir = dir.join(sanitize_component(&r.group)).join(sanitize_component(&r.id));
        let new_dir = bench_dir.join("new");
        std::fs::create_dir_all(&new_dir)?;
        std::fs::write(new_dir.join("estimates.json"), estimates_json(r))?;
    }
    Ok(())
}

/// Criterion directory names never contain path separators.
fn sanitize_component(name: &str) -> String {
    name.replace(['/', '\\'], "_")
}

/// The `estimates.json` subset downstream tooling reads: `mean` and
/// `median` estimates with their confidence intervals. The p10/p90 spread
/// stands in for the bootstrap interval (we keep raw samples, not a
/// resampled distribution).
fn estimates_json(r: &Record) -> String {
    let est = |point: f64, lo: f64, hi: f64| {
        format!(
            "{{\"confidence_interval\": {{\"confidence_level\": 0.8, \
             \"lower_bound\": {lo}, \"upper_bound\": {hi}}}, \
             \"point_estimate\": {point}, \"standard_error\": {se}}}",
            se = (hi - lo) / 2.0
        )
    };
    format!(
        "{{\n  \"mean\": {},\n  \"median\": {}\n}}\n",
        est(r.mean_ns, r.p10_ns, r.p90_ns),
        est(r.median_ns, r.p10_ns, r.p90_ns),
    )
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Expand a `main` that builds a [`Harness`] from the command line, runs the
/// given `fn(&mut Harness)` registration functions in order, and reports —
/// the moral equivalent of `criterion_group!` + `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($register:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::bench::Harness::from_args();
            $($register(&mut harness);)+
            harness.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut h = Harness::with_budget(1, 7);
        h.group("g").bench("work", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let r = &h.records()[0];
        assert_eq!(r.samples, 7);
        assert!(r.median_ns >= 0.0);
        assert!(r.p10_ns <= r.median_ns && r.median_ns <= r.p90_ns);
    }

    #[test]
    fn throughput_is_reported_when_declared() {
        let mut h = Harness::with_budget(0, 3);
        h.group("g").throughput_bytes(1 << 20).bench("copy", |b| {
            let src = vec![1u8; 1 << 20];
            let mut dst = vec![0u8; 1 << 20];
            b.iter(|| dst.copy_from_slice(&src));
        });
        assert!(h.records()[0].mib_per_s().unwrap() > 0.0);
    }

    #[test]
    fn json_output_is_wellformed_enough() {
        let mut h = Harness::with_budget(0, 2);
        h.group("a").bench("x", |b| b.iter(|| 1));
        h.group("b").throughput_bytes(64).bench("y", |b| b.iter(|| 2));
        let json = records_to_json(h.records());
        assert!(json.starts_with("{\n  \"benchmarks\": ["));
        assert!(json.contains("\"group\": \"a\""));
        assert!(json.contains("\"bytes_per_iter\": 64"));
        assert!(json.trim_end().ends_with('}'));
        // exactly one comma between the two records
        assert_eq!(json.matches("}},").count() + json.matches("},\n").count(), 1);
    }

    #[test]
    fn criterion_estimates_have_the_expected_shape() {
        let r = Record {
            group: "pingpong".into(),
            id: "64B".into(),
            median_ns: 100.0,
            p10_ns: 90.0,
            p90_ns: 130.0,
            mean_ns: 105.0,
            samples: 9,
            bytes_per_iter: None,
        };
        let json = estimates_json(&r);
        assert!(json.contains("\"mean\": {"));
        assert!(json.contains("\"median\": {"));
        assert!(json.contains("\"point_estimate\": 100"));
        assert!(json.contains("\"point_estimate\": 105"));
        assert!(json.contains("\"lower_bound\": 90"));
        assert!(json.contains("\"upper_bound\": 130"));
        assert!(json.contains("\"confidence_level\": 0.8"));
        assert!(json.contains("\"standard_error\": 20"));
    }

    #[test]
    fn criterion_dir_layout_matches_criterion() {
        let mut h = Harness::with_budget(0, 2);
        h.group("grp").bench("with/slash", |b| b.iter(|| 1));
        let dir = std::env::temp_dir().join(format!("testkit-criterion-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_criterion_dir(&dir, h.records()).unwrap();
        let estimates = dir.join("grp").join("with_slash").join("new").join("estimates.json");
        let content = std::fs::read_to_string(&estimates).unwrap();
        assert!(content.contains("\"point_estimate\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn percentiles_of_known_samples() {
        let mut times: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let r = summarize("g", "id", &mut times, None);
        assert_eq!(r.median_ns, 5.5);
        assert_eq!(r.p10_ns, 1.0);
        assert_eq!(r.p90_ns, 9.0);
        assert_eq!(r.mean_ns, 5.5);
    }
}
