//! # bcast-core — MPI broadcast algorithms, native and bandwidth-tuned
//!
//! Reproduction of *"A Bandwidth-saving Optimization for MPI Broadcast
//! Collective Operation"* (Zhou, Marjanovic, Niethammer, Gracia — ICPP 2015,
//! arXiv:1603.06809).
//!
//! MPICH3 broadcasts long messages (and medium messages on non-power-of-two
//! worlds) by binomial-scattering the buffer and then running a ring
//! allgather. The stock ring is *enclosed*: it re-delivers chunks that
//! non-leaf ranks of the scatter tree already hold, moving `P·(P−1)` messages.
//! The paper's tuned ring lets each rank compute, from its position in the
//! scatter tree, the step at which it may stop sending or receiving —
//! skipping exactly the redundant transfers while keeping the same `P−1`
//! step count and deadlock-free matching.
//!
//! This crate implements, against the [`mpsim::Communicator`] trait:
//!
//! * the paper's contribution: [`ring_tuned::ring_allgather_tuned`] /
//!   [`bcast::bcast_opt`],
//! * every MPICH3 baseline it is compared with: [`bcast::bcast_native`]
//!   (enclosed ring), [`binomial::bcast_binomial`] (smsg),
//!   [`rd_allgather::rd_allgather`] (mmsg-pof2), with MPICH3's selection
//!   logic in [`bcast::bcast_auto`],
//! * the multi-core-aware three-phase variant ([`smp::bcast_smp`]) and a
//!   segmented pipeline-chain broadcast ([`pipeline::bcast_pipeline`]),
//! * an analytic traffic model ([`traffic`]) reproducing the paper's
//!   Section IV transfer arithmetic (56 → 44 at `P = 8`, 90 → 75 at
//!   `P = 10`), validated against instrumented runs,
//! * the wider MPICH collective repertoire the broadcast work sits inside:
//!   standalone allgather ([`allgather`]: ring / recursive-doubling /
//!   Bruck), alltoall ([`alltoall`]: pairwise / Bruck), scatter & gather
//!   ([`scatter_gather`]), their variable-count forms ([`varcount`]), and
//!   reductions ([`reduce`]: binomial reduce, recursive-doubling allreduce,
//!   Rabenseifner) over typed elements ([`dtype`]).
//!
//! ## Quickstart
//!
//! ```
//! use mpsim::{Communicator, ThreadWorld};
//! use bcast_core::bcast::bcast_opt;
//!
//! let message = b"hello collective world".to_vec();
//! let n = message.len();
//! let out = ThreadWorld::run(8, |comm| {
//!     let mut buf = if comm.rank() == 0 { message.clone() } else { vec![0u8; n] };
//!     bcast_opt(comm, &mut buf, 0).unwrap();
//!     buf
//! });
//! assert!(out.results.iter().all(|buf| buf == &message));
//! // the tuned ring moved 44 allgather messages + 7 scatter messages
//! assert_eq!(out.traffic.total_msgs(), 51);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allgather;
pub mod alltoall;
pub mod bcast;
pub mod binomial;
pub mod chunks;
pub mod coalesce;
pub mod dtype;
pub mod event_launch;
pub mod pipeline;
pub mod rd_allgather;
pub mod recovery;
pub mod recovery_async;
pub mod reduce;
pub mod ring;
pub mod ring_tuned;
pub mod scatter;
pub mod scatter_gather;
pub mod schedule;
pub mod smp;
pub mod traffic;
pub mod varcount;
pub mod verify;

pub use bcast::{
    bcast_auto, bcast_auto_async, bcast_native, bcast_native_async, bcast_opt, bcast_opt_async,
    bcast_opt_root, bcast_opt_root_async, bcast_opt_shared_async, bcast_with, bcast_with_async,
    select_algorithm, Algorithm, Regime, Thresholds,
};
pub use binomial::{
    bcast_binomial, bcast_binomial_async, bcast_binomial_copy, bcast_binomial_copy_async,
};
pub use chunks::ChunkLayout;
pub use coalesce::{
    bcast_opt_coalesced, bcast_opt_coalesced_async, bcast_opt_coalesced_root,
    coalesced_envelope_count, ring_allgather_tuned_coalesced, CoalescePolicy,
};
pub use event_launch::{
    bcast_coalesced_event_world, bcast_event_world, check_recovery_outcome,
    reconcile_crashed_traffic, recovery_elapsed_bound, self_healing_bcast_event_world,
    self_healing_rank_task, RankRun, RecoverySpec, EVENT_LAUNCH_SEED,
};
pub use recovery::{
    branch, degraded_bcast_schedule, membership_digest, self_healing_bcast,
    self_healing_bcast_with, EpochComm, GuardedComm, Healed, RecoveryConfig, RecoveryDrill,
    RecoveryTrace,
};
pub use recovery_async::{
    self_healing_bcast_async, self_healing_bcast_traced_async, self_healing_bcast_with_async,
};
pub use ring_tuned::{
    ring_allgather_tuned_root, ring_allgather_tuned_shared_async, step_flag, Endpoint,
};
pub use scatter::{binomial_scatter_root, binomial_scatter_shared_async, owned_chunks};
pub use schedule::{all_sources, Loc, RankSchedule, SchedOp, Schedule, ScheduleSource};
pub use smp::{bcast_smp, NodeMap};
