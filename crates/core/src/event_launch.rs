//! World-launch entry points for the discrete-event executor: build an
//! [`EventWorld`] of `p` cooperative rank tasks, run one broadcast across it
//! and hand back the [`WorldOutcome`] with its traffic counters.
//!
//! The thread-per-rank executors top out at a few dozen ranks (OS threads,
//! stacks, context switches); the event executor schedules ranks as
//! hand-rolled futures on one thread, which is what makes the paper's
//! asymptotic claims checkable at cluster scale — `P = 256`, `1024`, `4096` —
//! inside an ordinary CI job. Every launch verifies the delivered payload on
//! every rank against the generator pattern before returning, so a returned
//! outcome is already a correctness witness; callers then compare the
//! counters against the closed forms in [`crate::traffic`].

use mpsim::{AsyncCommunicator, EventWorld, Rank, WorldOutcome};

use crate::bcast::{bcast_with_async, Algorithm};
use crate::coalesce::{bcast_opt_coalesced_async, CoalescePolicy};
use crate::verify::pattern;

/// Payload generator seed of every event-world launch — the outcome is
/// deterministic, so pinning the seed keeps repeated sweeps comparable.
pub const EVENT_LAUNCH_SEED: u64 = 0xE7E1;

/// Run one [`Algorithm`] as a full broadcast from `root` on an event world
/// of `p` ranks over an `nbytes` payload.
///
/// Every rank's delivered buffer is asserted equal to the source pattern
/// before its task exits; the returned outcome carries the measured traffic
/// and the virtual-clock elapsed time.
pub fn bcast_event_world(
    p: usize,
    nbytes: usize,
    root: Rank,
    algorithm: Algorithm,
) -> WorldOutcome<()> {
    let src = pattern(nbytes, EVENT_LAUNCH_SEED);
    let out = EventWorld::run(p, |comm| {
        let src = src.clone();
        async move {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            // A failed broadcast must fail the launch loudly: the whole
            // point of the sweep is the completed run. lint: allow(panic)
            bcast_with_async(&comm, &mut buf, root, algorithm).await.expect("broadcast failed");
            assert_eq!(buf, src, "rank {} diverged", comm.rank());
        }
    });
    // Built-in collectives use a handful of tags per peer pair, all of
    // which must stay in the mailbox lanes' inline buckets: a spill here
    // means the dense-lane fast path silently degraded to hashing.
    assert_eq!(out.reactor.mailbox_spills, 0, "collective traffic spilled a mailbox lane");
    out
}

/// Run the coalescing `MPI_Bcast_opt` from `root` on an event world of `p`
/// ranks over an `nbytes` payload — the envelope-count companion of
/// [`bcast_event_world`].
pub fn bcast_coalesced_event_world(
    p: usize,
    nbytes: usize,
    root: Rank,
    policy: CoalescePolicy,
) -> WorldOutcome<()> {
    let src = pattern(nbytes, EVENT_LAUNCH_SEED);
    let out = EventWorld::run(p, |comm| {
        let src = src.clone();
        async move {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            bcast_opt_coalesced_async(&comm, &mut buf, root, &policy)
                .await
                // Same contract as `bcast_event_world`. lint: allow(panic)
                .expect("coalesced broadcast failed");
            assert_eq!(buf, src, "rank {} diverged", comm.rank());
        }
    });
    // Same inline-bucket contract as `bcast_event_world`.
    assert_eq!(out.reactor.mailbox_spills, 0, "collective traffic spilled a mailbox lane");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{bcast_volume, scatter_msgs};

    #[test]
    fn event_launch_matches_closed_forms_small() {
        for &(p, nbytes) in &[(8usize, 4096usize), (10, 4096)] {
            for algorithm in [Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned] {
                let out = bcast_event_world(p, nbytes, 0, algorithm);
                let vol = bcast_volume(algorithm, nbytes, p);
                assert_eq!(out.traffic.total_msgs(), vol.msgs, "{algorithm:?} P={p}");
                assert_eq!(out.traffic.total_bytes(), vol.bytes, "{algorithm:?} P={p}");
            }
        }
    }

    #[test]
    fn coalesced_event_launch_envelopes() {
        for &p in &[8usize, 10] {
            let out = bcast_coalesced_event_world(p, 4096, 0, CoalescePolicy::unlimited());
            let expect = crate::coalesce::coalesced_envelope_count(p) + scatter_msgs(4096, p);
            assert_eq!(out.traffic.total_envelopes(), expect, "P={p}");
        }
    }

    #[test]
    fn event_launch_nonzero_root() {
        let out = bcast_event_world(10, 1000, 7, Algorithm::ScatterRingTuned);
        assert_eq!(out.traffic.total_msgs(), 75 + 9);
    }
}
