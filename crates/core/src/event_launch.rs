//! World-launch entry points for the discrete-event executor: build an
//! [`EventWorld`] of `p` cooperative rank tasks, run one broadcast across it
//! and hand back the [`WorldOutcome`] with its traffic counters.
//!
//! The thread-per-rank executors top out at a few dozen ranks (OS threads,
//! stacks, context switches); the event executor schedules ranks as
//! hand-rolled futures on one thread, which is what makes the paper's
//! asymptotic claims checkable at cluster scale — `P = 256`, `1024`, `4096` —
//! inside an ordinary CI job. Every launch verifies the delivered payload on
//! every rank against the generator pattern before returning, so a returned
//! outcome is already a correctness witness; callers then compare the
//! counters against the closed forms in [`crate::traffic`].

use std::collections::BTreeSet;
use std::time::Duration;

use mpsim::{AsyncCommunicator, EventWorld, Rank, Result, WorldOutcome, WorldTraffic};

use crate::bcast::{bcast_opt_shared_async, bcast_with_async, Algorithm};
use crate::coalesce::{bcast_opt_coalesced_async, CoalescePolicy};
use crate::recovery::{Healed, RecoveryConfig, RecoveryDrill, RecoveryTrace};
use crate::recovery_async::self_healing_bcast_traced_async;
use crate::verify::pattern;

/// Payload generator seed of every event-world launch — the outcome is
/// deterministic, so pinning the seed keeps repeated sweeps comparable.
pub const EVENT_LAUNCH_SEED: u64 = 0xE7E1;

/// Run one [`Algorithm`] as a full broadcast from `root` on an event world
/// of `p` ranks over an `nbytes` payload.
///
/// Every rank's delivered buffer is asserted equal to the source pattern
/// before its task exits; the returned outcome carries the measured traffic
/// and the virtual-clock elapsed time.
pub fn bcast_event_world(
    p: usize,
    nbytes: usize,
    root: Rank,
    algorithm: Algorithm,
) -> WorldOutcome<()> {
    let src = pattern(nbytes, EVENT_LAUNCH_SEED);
    let out = EventWorld::run(p, |comm| {
        let src = src.clone();
        async move {
            if comm.rank() == root && algorithm == Algorithm::ScatterRingTuned {
                // The root stages ONE shared envelope; both phases of the
                // tuned broadcast send refcounted sub-views of it, so the
                // root's whole copy bill is this single staging pass.
                let shared = comm.make_shared(&src);
                // A failed broadcast must fail the launch loudly: the whole
                // point of the sweep is the completed run. lint: allow(panic)
                bcast_opt_shared_async(&comm, &shared, root).await.expect("broadcast failed");
            } else {
                let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
                // Same loud-failure contract as above. lint: allow(panic)
                bcast_with_async(&comm, &mut buf, root, algorithm).await.expect("broadcast failed");
                assert_eq!(buf, src, "rank {} diverged", comm.rank());
            }
        }
    });
    // Built-in collectives use a handful of tags per peer pair, all of
    // which must stay in the mailbox lanes' inline buckets: a spill here
    // means the dense-lane fast path silently degraded to hashing.
    assert_eq!(out.reactor.mailbox_spills, 0, "collective traffic spilled a mailbox lane");
    out
}

/// Run the coalescing `MPI_Bcast_opt` from `root` on an event world of `p`
/// ranks over an `nbytes` payload — the envelope-count companion of
/// [`bcast_event_world`].
pub fn bcast_coalesced_event_world(
    p: usize,
    nbytes: usize,
    root: Rank,
    policy: CoalescePolicy,
) -> WorldOutcome<()> {
    let src = pattern(nbytes, EVENT_LAUNCH_SEED);
    let out = EventWorld::run(p, |comm| {
        let src = src.clone();
        async move {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            bcast_opt_coalesced_async(&comm, &mut buf, root, &policy)
                .await
                // Same contract as `bcast_event_world`. lint: allow(panic)
                .expect("coalesced broadcast failed");
            assert_eq!(buf, src, "rank {} diverged", comm.rank());
        }
    });
    // Same inline-bucket contract as `bcast_event_world`.
    assert_eq!(out.reactor.mailbox_spills, 0, "collective traffic spilled a mailbox lane");
    out
}

/// What one rank's self-healing run produced: the recovery outcome, the
/// per-rank [`RecoveryTrace`], and the delivered buffer (so launch-level
/// checkers can assert byte-identical payloads without re-threading state
/// out of the closure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankRun {
    /// The recovery outcome on this rank: [`Healed`] on a survivor, the
    /// self-naming `PeerFailed` on a crashed rank, the root-naming one when
    /// the payload is unrecoverable.
    pub result: Result<Healed>,
    /// What the epoch loop did on this rank, step by step.
    pub trace: RecoveryTrace,
    /// The rank's delivered buffer (meaningful only on `Ok`).
    pub buf: Vec<u8>,
}

/// The per-rank body of a self-healing launch over any communicator stack:
/// stage the source on the root, zero everyone else, run the traced
/// recovery loop, and package the outcome as a [`RankRun`].
///
/// The world assembly — which executor, which fault decorator — stays at
/// the call site; chaos harnesses wrap `comm` in a `netsim::FaultyComm`
/// before calling this, fault-free launches pass the executor's
/// communicator straight through.
pub async fn self_healing_rank_task<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    src: &[u8],
    root: Rank,
    algorithm: Algorithm,
    cfg: &RecoveryConfig,
    drill: &RecoveryDrill,
) -> RankRun {
    let mut buf = if comm.rank() == root { src.to_vec() } else { vec![0u8; src.len()] };
    let mut trace = RecoveryTrace::default();
    let result =
        self_healing_bcast_traced_async(comm, &mut buf, root, algorithm, cfg, drill, &mut trace)
            .await;
    RankRun { result, trace, buf }
}

/// Run a fault-free self-healing broadcast on an event world of `p` ranks
/// and assert it completes in one epoch with everyone alive — the megascale
/// smoke leg and the zero-fault baseline of the chaos harness.
///
/// Unlike [`bcast_event_world`], recovery launches do not assert on mailbox
/// lane spills: agreement traffic uses high digest-shifted tag pages that
/// are allowed to leave the dense inline buckets.
pub fn self_healing_bcast_event_world(
    p: usize,
    nbytes: usize,
    root: Rank,
    algorithm: Algorithm,
    cfg: &RecoveryConfig,
) -> WorldOutcome<RankRun> {
    let src = pattern(nbytes, EVENT_LAUNCH_SEED);
    let cfg = *cfg;
    let out = EventWorld::run(p, |comm| {
        let src = src.clone();
        async move {
            self_healing_rank_task(&comm, &src, root, algorithm, &cfg, &RecoveryDrill::NONE).await
        }
    });
    let spec = RecoverySpec { src: &src, root, cfg, planned_victims: &[], lossy_links: false };
    if let Err(why) = check_recovery_outcome(&spec, &out.results, &out.traffic, out.elapsed) {
        // A fault-free launch violating its own invariants is a harness
        // bug, not a finding. lint: allow(panic)
        panic!("fault-free self-healing launch failed: {why}");
    }
    out
}

/// What a self-healing launch was *supposed* to do — the reference the
/// invariant checker judges a [`RankRun`] set against.
#[derive(Debug, Clone, Copy)]
pub struct RecoverySpec<'a> {
    /// The source payload staged on the root.
    pub src: &'a [u8],
    /// The caller-designated root (world numbering).
    pub root: Rank,
    /// The configuration the run was *supposed* to honor. Drill knobs that
    /// secretly degrade the runner are judged — and caught — against this.
    pub cfg: RecoveryConfig,
    /// Ranks the fault plan may fail-stop. Ranks outside this set must
    /// never die, and may only be excluded from a survivor set by a
    /// mid-agreement split (bounded below).
    pub planned_victims: &'a [Rank],
    /// Whether the network itself may drop, duplicate or delay messages.
    /// A lossy fabric leaves in-flight retransmissions undrained at
    /// teardown, so traffic is judged by per-link conservation
    /// ([`reconcile_crashed_traffic`]) instead of exact balance even when
    /// no rank crashes.
    pub lossy_links: bool,
}

impl RecoverySpec<'_> {
    /// Whether the spec guarantees every live rank heals: the root must be
    /// crash-free and the epoch budget must cover the worst cascade — each
    /// crash can burn two epochs (the split-verdict epoch plus the stalled
    /// isolation epoch), plus the final clean attempt.
    pub fn liveness_guaranteed(&self) -> bool {
        !self.planned_victims.contains(&self.root)
            && self.cfg.max_epochs > 2 * self.planned_victims.len() as u32
    }
}

/// A loose upper bound on the virtual-clock duration of a self-healing
/// launch at world size `p`: every epoch costs at most one stalled attempt
/// plus one full agreement round, each receive bounded by the heartbeat
/// deadline. Real runs sit orders of magnitude below it; a run *above* it
/// means a timeout failed to fire — the recovery-time invariant.
pub fn recovery_elapsed_bound(cfg: &RecoveryConfig, p: usize) -> Duration {
    let per_receive = cfg.step_timeout.saturating_mul(2 * p as u32 + 6);
    per_receive.saturating_mul((p as u32 + 2).saturating_mul(cfg.max_epochs.max(1)))
}

/// Per-link conservation under crashes: a link may under-deliver (messages
/// to or from a dead rank vanish) but never over-deliver — for every
/// directed link, messages and bytes received must not exceed those sent.
/// This is the crash-tolerant weakening of
/// [`mpsim::WorldTraffic::is_balanced`], which only holds fault-free.
pub fn reconcile_crashed_traffic(traffic: &WorldTraffic) -> std::result::Result<(), String> {
    for (dst, stats) in traffic.per_rank.iter().enumerate() {
        for (&src, pt) in &stats.by_peer {
            let sent = traffic
                .per_rank
                .get(src)
                .and_then(|s| s.by_peer.get(&dst))
                .copied()
                .unwrap_or_default();
            if pt.msgs_recvd > sent.msgs_sent || pt.bytes_recvd > sent.bytes_sent {
                return Err(format!(
                    "link {src}->{dst} over-delivered: recvd {}msg/{}B vs sent {}msg/{}B",
                    pt.msgs_recvd, pt.bytes_recvd, sent.msgs_sent, sent.bytes_sent
                ));
            }
        }
    }
    Ok(())
}

/// Judge one completed self-healing launch against its [`RecoverySpec`].
///
/// Returns the first violated invariant as a human-readable finding — this
/// is deliberately non-panicking so the chaos search can use it as its
/// violation oracle. The invariants, in order:
///
/// 1. **Survivor-set sandwich** — every healed rank's survivor set contains
///    nothing outside `healed ∪ planned victims` (a mid-agreement split may
///    let an early healer still count a victim), and misses a healed rank
///    only if that rank healed in a strictly earlier epoch — an early
///    healer exits the world and legitimately looks dead to laggards, but
///    excluding a same-epoch or later healer on a lossless fabric is a
///    split-brain. On a lossy fabric the miss check is waived entirely:
///    the group may partition into digest-isolated subgroups.
/// 2. **Byte-identical payload** — every healed rank's buffer equals the
///    source.
/// 3. **Budget** — epochs used never exceed the spec's `max_epochs`, and
///    the trace agrees with the result.
/// 4. **Liveness** — when [`RecoverySpec::liveness_guaranteed`], every rank
///    outside the victim set heals.
/// 5. **Traffic conservation** — exact balance fault-free, per-link
///    `recvd ≤ sent` under crashes or lossy links.
/// 6. **Recovery time** — virtual elapsed within
///    [`recovery_elapsed_bound`].
pub fn check_recovery_outcome(
    spec: &RecoverySpec<'_>,
    results: &[RankRun],
    traffic: &WorldTraffic,
    elapsed: Duration,
) -> std::result::Result<(), String> {
    let p = results.len();
    let victims: BTreeSet<Rank> = spec.planned_victims.iter().copied().collect();
    let healed: BTreeSet<Rank> =
        results.iter().enumerate().filter(|(_, r)| r.result.is_ok()).map(|(r, _)| r).collect();

    for (rank, run) in results.iter().enumerate() {
        match &run.result {
            Ok(h) => {
                let s: BTreeSet<Rank> = h.survivors.iter().copied().collect();
                if s.len() != h.survivors.len() || h.survivors.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(format!("rank {rank}: survivor list not strictly sorted"));
                }
                if !s.contains(&rank) {
                    return Err(format!("rank {rank} healed but is not in its own survivor set"));
                }
                // Convergence is epoch-monotone, not absolute: a rank that
                // heals early (HEALED_SURVIVORS) exits the world, and to
                // ranks still agreeing an exited healer is indistinguishable
                // from a crasher — so a later healer may count it dead. What
                // a lossless fabric forbids is the converse: excluding a
                // rank that heals in the same or a later epoch would be a
                // genuine split-brain. Under message loss even that is
                // waived — the group may partition into digest-isolated
                // subgroups; ghost-freedom, byte-identity and conservation
                // still bind.
                if !spec.lossy_links {
                    for &missing in healed.difference(&s) {
                        let their_epoch = match &results[missing].result {
                            Ok(theirs) => theirs.epochs,
                            Err(_) => unreachable!("healed set only holds Ok ranks"),
                        };
                        if their_epoch >= h.epochs {
                            return Err(format!(
                                "rank {rank} (healed epoch {}) excludes rank {missing}, which \
                                 healed in epoch {their_epoch} — a lossless split-brain",
                                h.epochs
                            ));
                        }
                    }
                }
                if let Some(&ghost) = s.iter().find(|r| !healed.contains(r) && !victims.contains(r))
                {
                    return Err(format!(
                        "rank {rank}'s survivor set counts rank {ghost}, which neither healed \
                         nor was a planned victim"
                    ));
                }
                if h.epochs == 0 || h.epochs > spec.cfg.max_epochs {
                    return Err(format!(
                        "rank {rank} used {} epochs outside budget 1..={}",
                        h.epochs, spec.cfg.max_epochs
                    ));
                }
                if run.trace.epochs_entered != h.epochs {
                    return Err(format!(
                        "rank {rank}: trace entered {} epochs but result says {}",
                        run.trace.epochs_entered, h.epochs
                    ));
                }
                if run.buf != spec.src {
                    return Err(format!("rank {rank} delivered a diverged payload"));
                }
            }
            Err(_) if victims.contains(&rank) => {}
            Err(e) => {
                if spec.liveness_guaranteed() {
                    return Err(format!(
                        "rank {rank} was never a victim but failed with {e:?} although the spec \
                         guarantees liveness (root alive, budget {} >= {})",
                        spec.cfg.max_epochs,
                        2 * victims.len() + 1
                    ));
                }
            }
        }
    }

    if spec.liveness_guaranteed() && healed.len() < p - victims.len() {
        return Err(format!(
            "only {} of {} guaranteed-live ranks healed",
            healed.len(),
            p - victims.len()
        ));
    }

    if victims.is_empty() && !spec.lossy_links {
        if !traffic.is_balanced() {
            return Err("fault-free launch left traffic unbalanced".into());
        }
    } else {
        reconcile_crashed_traffic(traffic)?;
    }

    let bound = recovery_elapsed_bound(&spec.cfg, p);
    if elapsed > bound {
        return Err(format!("recovery took {elapsed:?}, above the bound {bound:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{bcast_volume, scatter_msgs};

    #[test]
    fn event_launch_matches_closed_forms_small() {
        for &(p, nbytes) in &[(8usize, 4096usize), (10, 4096)] {
            for algorithm in [Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned] {
                let out = bcast_event_world(p, nbytes, 0, algorithm);
                let vol = bcast_volume(algorithm, nbytes, p);
                assert_eq!(out.traffic.total_msgs(), vol.msgs, "{algorithm:?} P={p}");
                assert_eq!(out.traffic.total_bytes(), vol.bytes, "{algorithm:?} P={p}");
            }
        }
    }

    #[test]
    fn coalesced_event_launch_envelopes() {
        for &p in &[8usize, 10] {
            let out = bcast_coalesced_event_world(p, 4096, 0, CoalescePolicy::unlimited());
            let expect = crate::coalesce::coalesced_envelope_count(p) + scatter_msgs(4096, p);
            assert_eq!(out.traffic.total_envelopes(), expect, "P={p}");
        }
    }

    #[test]
    fn event_launch_nonzero_root() {
        let out = bcast_event_world(10, 1000, 7, Algorithm::ScatterRingTuned);
        assert_eq!(out.traffic.total_msgs(), 75 + 9);
    }

    #[test]
    fn self_healing_event_launch_fault_free() {
        let cfg = RecoveryConfig::default();
        let out = self_healing_bcast_event_world(16, 2048, 3, Algorithm::ScatterRingTuned, &cfg);
        for run in &out.results {
            let h = run.result.as_ref().unwrap();
            assert_eq!(h.epochs, 1);
            assert_eq!(h.survivors.len(), 16);
            assert!(run.trace.saw(crate::recovery::branch::HEALED_ALL));
        }
    }

    #[test]
    fn checker_rejects_diverged_payload() {
        let cfg = RecoveryConfig::default();
        let out = self_healing_bcast_event_world(4, 64, 0, Algorithm::Binomial, &cfg);
        let src = pattern(64, EVENT_LAUNCH_SEED);
        let mut results = out.results.clone();
        results[2].buf[10] ^= 0xFF;
        let spec =
            RecoverySpec { src: &src, root: 0, cfg, planned_victims: &[], lossy_links: false };
        let err = check_recovery_outcome(&spec, &results, &out.traffic, out.elapsed).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn checker_rejects_silent_non_victim_failure() {
        let cfg = RecoveryConfig::default();
        let out = self_healing_bcast_event_world(4, 64, 0, Algorithm::Binomial, &cfg);
        let src = pattern(64, EVENT_LAUNCH_SEED);
        let mut results = out.results.clone();
        results[1].result = Err(mpsim::CommError::Timeout { peer: 0 });
        let spec =
            RecoverySpec { src: &src, root: 0, cfg, planned_victims: &[], lossy_links: false };
        // The sandwich invariant catches it first (the dead rank still sits
        // in everyone's survivor set); either finding is a valid rejection.
        let err = check_recovery_outcome(&spec, &results, &out.traffic, out.elapsed).unwrap_err();
        assert!(err.contains("neither healed") || err.contains("guarantees liveness"), "{err}");
        // ...but the same failure on a planned victim is acceptable
        let spec =
            RecoverySpec { src: &src, root: 0, cfg, planned_victims: &[1], lossy_links: false };
        check_recovery_outcome(&spec, &results, &out.traffic, out.elapsed).unwrap();
    }

    #[test]
    fn crashed_traffic_reconciliation_flags_over_delivery() {
        let out = bcast_event_world(4, 256, 0, Algorithm::ScatterRingTuned);
        reconcile_crashed_traffic(&out.traffic).unwrap();
        let mut t = out.traffic.clone();
        let pt = t.per_rank[1].by_peer.get_mut(&0).unwrap();
        pt.msgs_recvd += 5;
        assert!(reconcile_crashed_traffic(&t).unwrap_err().contains("over-delivered"));
    }
}
