//! The **tuned, non-enclosed ring allgather** — the paper's contribution
//! (Section IV, Figures 4 and 5, Listing 1).
//!
//! After the binomial scatter, rank `rel` (root-relative) already holds the
//! contiguous chunk interval `[rel, rel + own(rel))` — not just its own
//! chunk. The native ring ignores this and re-delivers those chunks. The
//! tuned ring computes, per rank, a `(step, flag)` pair from the same
//! power-of-two mask walk the scatter used:
//!
//! * a rank whose *right neighbour* is a subtree root of `step` chunks stops
//!   **sending** after `P − step` steps (`flag = RecvOnly`): everything it
//!   would forward later is already in the neighbour's buffer;
//! * a rank that *is* a subtree root of `step` chunks stops **receiving**
//!   after `P − step` steps (`flag = SendOnly`): the remaining chunks on the
//!   ring are exactly the ones it already owns.
//!
//! Both members of each ring edge compute the same `step`, so every posted
//! receive is matched by a send — the algorithm stays deadlock-free while
//! skipping exactly the redundant transfers. Step count stays `P − 1`;
//! transfers drop from `P(P−1)` to `P² − Σ own(rel)` (56 → 44 for `P = 8`,
//! 90 → 75 for `P = 10`).

use mpsim::{
    ceil_pof2, complete_now, relative_rank, ring_left, ring_right, AsyncCommunicator, Communicator,
    Rank, Result, SharedBuf, SyncComm, Tag,
};

use crate::chunks::ChunkLayout;
use crate::ring::ring_step_chunks;
use crate::schedule::{Loc, Schedule};

/// What a rank degrades to once the redundant phase of the ring is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `flag = 0` in the paper: keep sending, stop receiving — this rank is a
    /// scatter-subtree root and already owns the remaining chunks.
    SendOnly,
    /// `flag = 1` in the paper: keep receiving, stop sending — this rank's
    /// right neighbour is a subtree root and needs nothing more from us.
    RecvOnly,
}

/// The paper's added pseudo-code: compute `(step, flag)` for a rank at
/// root-relative position `rel` in a ring of `size ≥ 2`.
///
/// `step` is the chunk-count of the relevant subtree (this rank's for
/// [`Endpoint::SendOnly`], the right neighbour's for [`Endpoint::RecvOnly`]),
/// capped at `size − subtree_root` for non-power-of-two sizes. During ring
/// step `i` (1-based), the rank does a full `sendrecv` while
/// `step <= size − i` and degrades to its endpoint role afterwards.
pub fn step_flag(rel: Rank, size: usize) -> (usize, Endpoint) {
    assert!(size >= 2, "step_flag needs a ring of at least 2");
    assert!(rel < size);
    let mut mask = ceil_pof2(size);
    while mask > 1 {
        let right_rel = if rel + 1 < size { rel + 1 } else { rel + 1 - size };
        if right_rel % mask == 0 {
            let step = if right_rel + mask > size { size - right_rel } else { mask };
            return (step, Endpoint::RecvOnly);
        }
        if rel.is_multiple_of(mask) {
            let step = if rel + mask > size { size - rel } else { mask };
            return (step, Endpoint::SendOnly);
        }
        mask >>= 1;
    }
    unreachable!("every rank matches by mask 2: rel or rel+1 is even");
}

/// Whether the rank `(step, flag)` sends at ring step `i` (1-based).
#[inline]
pub fn sends_at(step: usize, flag: Endpoint, size: usize, i: usize) -> bool {
    step <= size - i || flag == Endpoint::SendOnly
}

/// Whether the rank `(step, flag)` receives at ring step `i` (1-based).
#[inline]
pub fn receives_at(step: usize, flag: Endpoint, size: usize, i: usize) -> bool {
    step <= size - i || flag == Endpoint::RecvOnly
}

/// Run the tuned (non-enclosed) ring allgather over a buffer that has been
/// binomial-scattered from `root` — the allgather phase of `MPI_Bcast_opt`.
pub fn ring_allgather_tuned(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    complete_now(ring_allgather_tuned_async(&SyncComm::new(comm), buf, root))
}

/// Async core of [`ring_allgather_tuned`]: the identical `(step, flag)` walk
/// over any [`AsyncCommunicator`] — run natively by the event executor,
/// driven through [`SyncComm`] by the blocking backends.
///
/// Payload flow mirrors the native ring's hold chain — each step forwards
/// the envelope received on the previous step as a refcount clone — but the
/// tuned walk *skips* receives, so the chain is keyed by chunk index: a
/// send whose chunk is not the held envelope (the first send, and a
/// `SendOnly` rank's re-sends of scatter-owned chunks) stages it from the
/// user buffer via [`AsyncCommunicator::make_shared`]. Every received
/// envelope still pays exactly one landing copy. Wire traffic is identical
/// to the classic `(step, flag)` walk.
pub async fn ring_allgather_tuned_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    let rank = comm.rank();
    let layout = ChunkLayout::new(buf.len(), size);
    let left = ring_left(rank, size);
    let right = ring_right(rank, size);
    let rel = relative_rank(rank, root, size);
    let (step, flag) = step_flag(rel, size);

    // Last received envelope, keyed by the chunk it carries. Unlike the
    // native ring, a matching length is NOT proof of a matching chunk here
    // (a skipped receive leaves `held` stale), hence the index key.
    let mut held: Option<(usize, SharedBuf)> = None;
    for i in 1..size {
        let (send_chunk, recv_chunk) = ring_step_chunks(rel, size, i);
        let send_range = layout.range(send_chunk);
        let recv_range = layout.range(recv_chunk);
        if step <= size - i {
            // Both directions still useful: full exchange as in the native
            // ring. Borrow (don't clone) the forwarded envelope — the
            // transport clones it into the outgoing message itself.
            let env = {
                let staged;
                let chunk = match &held {
                    Some((held_chunk, env)) if *held_chunk == send_chunk => env,
                    _ => {
                        staged = comm.make_shared(&buf[send_range]);
                        &staged
                    }
                };
                comm.sendrecv_shared(
                    chunk,
                    right,
                    Tag::ALLGATHER,
                    recv_range.len(),
                    left,
                    Tag::ALLGATHER,
                )
                .await?
            };
            buf[recv_range.start..recv_range.start + env.len()].copy_from_slice(&env);
            comm.note_copy(env.len());
            held = Some((recv_chunk, env));
        } else {
            match flag {
                Endpoint::RecvOnly => {
                    let env = comm.recv_owned(recv_range.len(), left, Tag::ALLGATHER).await?;
                    buf[recv_range.start..recv_range.start + env.len()].copy_from_slice(&env);
                    comm.note_copy(env.len());
                    held = Some((recv_chunk, env));
                }
                Endpoint::SendOnly => {
                    let staged;
                    let chunk = match &held {
                        Some((held_chunk, env)) if *held_chunk == send_chunk => env,
                        _ => {
                            staged = comm.make_shared(&buf[send_range]);
                            &staged
                        }
                    };
                    // This *is* the uncoalesced baseline; the merged-tail
                    // variant lives in `coalesce`. lint: allow(per-chunk-send)
                    comm.send_shared(chunk, right, Tag::ALLGATHER).await?;
                }
            }
        }
    }
    Ok(())
}

/// Root-side [`ring_allgather_tuned`] over an **immutable** source buffer.
///
/// The root sits at root-relative position 0, which [`step_flag`] classifies
/// as `(P, SendOnly)`: it degrades immediately, never posts a receive, and
/// every one of its `P − 1` lone sends only *reads* a chunk it already owns.
/// Together with [`crate::scatter::binomial_scatter_root`] this lets the
/// root run the whole broadcast from a shared `&[u8]` with no defensive
/// clone.
pub fn ring_allgather_tuned_root(
    comm: &(impl Communicator + ?Sized),
    src: &[u8],
    root: Rank,
) -> Result<()> {
    complete_now(ring_allgather_tuned_root_async(&SyncComm::new(comm), src, root))
}

/// Async core of [`ring_allgather_tuned_root`] — see
/// [`ring_allgather_tuned_async`].
///
/// Stages `src` into one shared envelope and delegates to
/// [`ring_allgather_tuned_shared_async`]: one `nbytes` staging copy, then
/// every per-chunk send is a refcounted sub-view.
pub async fn ring_allgather_tuned_root_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    src: &[u8],
    root: Rank,
) -> Result<()> {
    let shared = comm.make_shared(src);
    ring_allgather_tuned_shared_async(comm, &shared, root).await
}

/// Root-side tuned ring from an **already-shared** envelope: each of the
/// `P − 1` lone sends is a [`SharedBuf::slice`] of `src`, so this path
/// copies nothing at all. Callers that stage the payload once for both
/// broadcast phases (e.g. the event-world launcher, or
/// [`crate::bcast::bcast_opt_root_async`]) use this directly.
pub async fn ring_allgather_tuned_shared_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    src: &SharedBuf,
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    assert_eq!(comm.rank(), root, "ring_allgather_tuned_root must run on the root rank");
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    let layout = ChunkLayout::new(src.len(), size);
    let right = ring_right(root, size);
    for i in 1..size {
        let (send_chunk, _) = ring_step_chunks(0, size, i);
        // Per-step pacing mirrors the mutable tuned ring;
        // `bcast_opt_coalesced_root` is the one-envelope form. lint: allow(per-chunk-send)
        comm.send_shared(&src.slice(layout.range(send_chunk)), right, Tag::ALLGATHER).await?;
    }
    Ok(())
}

/// Append the symbolic ops of [`ring_allgather_tuned`] to `sched`.
pub(crate) fn append_tuned_ring_ops(sched: &mut Schedule, root: Rank) {
    append_tuned_ring_ops_with(sched, root, step_flag);
}

/// Like [`append_tuned_ring_ops`] but with an injectable `(step, flag)`
/// function. This is the mutation hook for the `schedcheck` negative suite:
/// feeding a corrupted `step_flag` (e.g. off by one) must produce a schedule
/// the static analyses reject.
pub fn append_tuned_ring_ops_with(
    sched: &mut Schedule,
    root: Rank,
    step_flag_fn: impl Fn(Rank, usize) -> (usize, Endpoint),
) {
    let size = sched.p;
    if size == 1 {
        return;
    }
    let layout = ChunkLayout::new(sched.ranks[0].buf_len, size);
    for rank in 0..size {
        let left = ring_left(rank, size);
        let right = ring_right(rank, size);
        let rel = relative_rank(rank, root, size);
        let (step, flag) = step_flag_fn(rel, size);
        for i in 1..size {
            let (send_chunk, recv_chunk) = ring_step_chunks(rel, size, i);
            let send_range = layout.range(send_chunk);
            let recv_range = layout.range(recv_chunk);
            if step <= size - i {
                sched.ranks[rank].sendrecv(
                    "ring_tuned",
                    right,
                    Tag::ALLGATHER,
                    Loc::Buf(send_range),
                    left,
                    Tag::ALLGATHER,
                    Loc::Buf(recv_range),
                );
            } else {
                match flag {
                    Endpoint::RecvOnly => {
                        sched.ranks[rank].recv(
                            "ring_tuned",
                            left,
                            Tag::ALLGATHER,
                            Loc::Buf(recv_range),
                        );
                    }
                    Endpoint::SendOnly => {
                        sched.ranks[rank].send(
                            "ring_tuned",
                            right,
                            Tag::ALLGATHER,
                            Loc::Buf(send_range),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::{binomial_scatter, binomial_scatter_root, owned_chunks};
    use mpsim::{ThreadWorld, WorldTraffic};

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 61 + 5) as u8).collect()
    }

    fn run(size: usize, nbytes: usize, root: Rank) -> WorldTraffic {
        let src = pattern(nbytes);
        let out = ThreadWorld::run(size, |comm| {
            if comm.rank() == root {
                // The root broadcasts straight from the shared source: no
                // defensive clone, both phases are read-only on the root.
                binomial_scatter_root(comm, &src, root).unwrap();
                ring_allgather_tuned_root(comm, &src, root).unwrap();
            } else {
                let mut buf = vec![0u8; nbytes];
                binomial_scatter(comm, &mut buf, root).unwrap();
                ring_allgather_tuned(comm, &mut buf, root).unwrap();
                assert_eq!(buf, src, "rank {} incomplete", comm.rank());
            }
        });
        out.traffic
    }

    #[test]
    fn step_flag_paper_example_p8() {
        // Hand-derived from Figure 4 (verified against the paper's narrative).
        use Endpoint::*;
        let expect = [
            (8, SendOnly), // root: sends all 7 steps, never receives
            (2, RecvOnly),
            (2, SendOnly),
            (4, RecvOnly),
            (4, SendOnly), // "from the fifth step on process 4 stops receiving"
            (2, RecvOnly),
            (2, SendOnly),
            (8, RecvOnly), // left neighbour of root: receives all, never sends
        ];
        for (rel, &e) in expect.iter().enumerate() {
            assert_eq!(step_flag(rel, 8), e, "rel={rel}");
        }
    }

    #[test]
    fn step_flag_paper_example_p10() {
        use Endpoint::*;
        let expect = [
            (10, SendOnly), // root
            (2, RecvOnly),
            (2, SendOnly),
            (4, RecvOnly),
            (4, SendOnly), // stops receiving after step 6 (10−4)
            (2, RecvOnly),
            (2, SendOnly),
            (2, RecvOnly),  // right neighbour p8 owns {8,9} → step 2
            (2, SendOnly),  // p8 owns {8,9}: 2^3 capped to 10−8 = 2
            (10, RecvOnly), // left neighbour of root
        ];
        for (rel, &e) in expect.iter().enumerate() {
            assert_eq!(step_flag(rel, 10), e, "rel={rel}");
        }
    }

    #[test]
    fn send_only_step_equals_scatter_ownership() {
        // The SendOnly rank's `step` must equal the number of chunks the
        // binomial scatter left in its buffer — that is what makes skipping
        // receives safe.
        for size in 2..130 {
            for rel in 0..size {
                let (step, flag) = step_flag(rel, size);
                if flag == Endpoint::SendOnly {
                    assert_eq!(step, owned_chunks(rel, size), "size={size} rel={rel}");
                }
            }
        }
    }

    #[test]
    fn recv_only_step_describes_right_neighbours_ownership() {
        // A RecvOnly rank stops sending because its right neighbour already
        // owns the tail of the ring: its `step` must equal the neighbour's
        // scatter ownership. (The neighbour itself may be classified
        // RecvOnly-with-full-step when it sits just left of the root — e.g.
        // rel = size−2 for odd sizes — but its ownership is still what
        // bounds our sends.)
        for size in 2..130 {
            for rel in 0..size {
                let (step, flag) = step_flag(rel, size);
                if flag == Endpoint::RecvOnly {
                    let right = (rel + 1) % size;
                    assert_eq!(step, owned_chunks(right, size), "size={size} rel={rel}");
                }
            }
        }
    }

    #[test]
    fn every_edge_send_matched_by_receive() {
        for size in 2..64 {
            for rel in 0..size {
                let (s_step, s_flag) = step_flag(rel, size);
                let right = (rel + 1) % size;
                let (r_step, r_flag) = step_flag(right, size);
                for i in 1..size {
                    assert_eq!(
                        sends_at(s_step, s_flag, size, i),
                        receives_at(r_step, r_flag, size, i),
                        "mismatched edge {rel}→{right} at step {i}, size={size}"
                    );
                }
            }
        }
    }

    #[test]
    fn received_chunks_are_exactly_the_missing_ones() {
        // A rank receives chunks rel−1, rel−2, … while it still receives;
        // the union with its scatter ownership must cover all chunks with no
        // chunk received twice and no owned chunk re-received.
        for size in 2..80 {
            for rel in 0..size {
                let (step, flag) = step_flag(rel, size);
                let mut have: Vec<bool> = (0..size)
                    .map(|c| {
                        let own = owned_chunks(rel, size);
                        // owned interval [rel, rel+own) — never wraps
                        (rel..rel + own).contains(&c)
                    })
                    .collect();
                for i in 1..size {
                    if receives_at(step, flag, size, i) {
                        let (_, recv_chunk) = ring_step_chunks(rel, size, i);
                        assert!(
                            !have[recv_chunk],
                            "size={size} rel={rel} re-received {recv_chunk}"
                        );
                        have[recv_chunk] = true;
                    }
                }
                assert!(have.iter().all(|&h| h), "size={size} rel={rel} incomplete");
            }
        }
    }

    #[test]
    fn completes_broadcast_many_shapes() {
        for &(size, nbytes, root) in &[
            (8usize, 64usize, 0usize),
            (8, 61, 3),
            (10, 100, 0),
            (10, 97, 7),
            (9, 50, 4),
            (16, 1024, 9),
            (3, 2, 1),
            (2, 10, 1),
            (12, 7, 0), // nbytes < P
            (6, 0, 5),  // zero bytes
        ] {
            run(size, nbytes, root);
        }
    }

    #[test]
    fn paper_transfer_counts() {
        // §IV: tuned ring = 44 transfers for P=8 (56 − 12) and 75 for P=10
        // (90 − 15). The scatter adds P−1 on top.
        let t8 = run(8, 80, 0);
        assert_eq!(t8.total_msgs(), 44 + 7);
        let t10 = run(10, 100, 0);
        assert_eq!(t10.total_msgs(), 75 + 9);
    }

    #[test]
    fn transfer_counts_independent_of_root() {
        for root in 0..10 {
            let t = run(10, 100, root);
            assert_eq!(t.total_msgs(), 75 + 9, "root={root}");
        }
    }

    #[test]
    fn never_more_traffic_than_native() {
        for size in 2..24 {
            let tuned = run(size, size * 8, 0).total_msgs();
            let native = (size * (size - 1) + size - 1) as u64;
            assert!(tuned <= native, "size={size}: tuned {tuned} > native {native}");
        }
    }

    #[test]
    fn single_rank_is_noop() {
        let t = run(1, 16, 0);
        assert_eq!(t.total_msgs(), 0);
    }
}
