//! Standalone `MPI_Scatter` and `MPI_Gather` over binomial trees — the
//! dissemination/collection primitives MPICH builds its broadcast scatter
//! phase from, provided here as proper collectives with MPI semantics
//! (uniform block per rank, root holds the full buffer).

use mpsim::{absolute_rank, relative_rank, Communicator, Rank, Result, Tag};

use crate::schedule::{Loc, Schedule, ScheduleSource};

/// `MPI_Scatter`: the root's `sendbuf` (length `block × P`, rank order) is
/// split into `P` blocks; rank `r` receives block `r` into `recvbuf`.
///
/// Runs down a binomial tree in root-relative rank space: each internal node
/// receives its whole subtree's blocks and forwards halves, `ceil(log2 P)`
/// latency steps total. Non-root ranks pass an empty `sendbuf`.
pub fn scatter_binomial(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    let rank = comm.rank();
    let block = recvbuf.len();
    if rank == root {
        assert_eq!(sendbuf.len(), block * size, "root scatter buffer must be block × P");
    }

    let relative = relative_rank(rank, root, size);

    // Staging buffer in *relative* order so subtrees are contiguous.
    let mut stage = vec![0u8; block * size];
    let mut have = 0usize; // blocks held, starting at our own relative slot
    if rank == root {
        for rel in 0..size {
            let abs = absolute_rank(rel, root, size);
            stage[rel * block..(rel + 1) * block]
                .copy_from_slice(&sendbuf[abs * block..(abs + 1) * block]);
        }
        have = size;
    }

    // Receive phase: the parent delivers our whole subtree.
    let mut mask = 1usize;
    while mask < size {
        if relative & mask != 0 {
            let src = absolute_rank(relative - mask, root, size);
            let subtree = mask.min(size - relative);
            let got = comm.recv(
                &mut stage[relative * block..(relative + subtree) * block],
                src,
                Tag::SCATTER,
            )?;
            debug_assert_eq!(got, subtree * block);
            have = subtree;
            break;
        }
        mask <<= 1;
    }

    // Send phase: forward the upper half of what we hold to each child.
    mask >>= 1;
    while mask > 0 {
        if relative + mask < size {
            let child_rel = relative + mask;
            let child_blocks = have.saturating_sub(mask).min(mask.min(size - child_rel));
            if child_blocks > 0 {
                let dst = absolute_rank(child_rel, root, size);
                comm.send(
                    &stage[child_rel * block..(child_rel + child_blocks) * block],
                    dst,
                    Tag::SCATTER,
                )?;
                have -= child_blocks;
            }
        }
        mask >>= 1;
    }

    recvbuf.copy_from_slice(&stage[relative * block..relative * block + block]);
    Ok(())
}

/// `MPI_Gather`: rank `r`'s `sendbuf` (one block) ends up at block `r` of the
/// root's `recvbuf` — the binomial mirror image of [`scatter_binomial`]:
/// leaves send first, internal nodes accumulate their subtree before
/// forwarding to their parent.
pub fn gather_binomial(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    let rank = comm.rank();
    let block = sendbuf.len();
    if rank == root {
        assert_eq!(recvbuf.len(), block * size, "root gather buffer must be block × P");
    }

    let relative = relative_rank(rank, root, size);
    let mut stage = vec![0u8; block * size];
    stage[relative * block..(relative + 1) * block].copy_from_slice(sendbuf);
    let mut have = 1usize; // contiguous blocks held from our relative slot

    // Collect from children (nearest first — the reverse of scatter's order).
    let mut mask = 1usize;
    while mask < size {
        if relative & mask != 0 {
            // We have collected our whole subtree: ship it to the parent.
            let dst = absolute_rank(relative - mask, root, size);
            comm.send(&stage[relative * block..(relative + have) * block], dst, Tag::GATHER)?;
            break;
        }
        let child_rel = relative + mask;
        if child_rel < size {
            let child_blocks = mask.min(size - child_rel);
            let got = comm.recv(
                &mut stage[child_rel * block..(child_rel + child_blocks) * block],
                absolute_rank(child_rel, root, size),
                Tag::GATHER,
            )?;
            debug_assert_eq!(got, child_blocks * block);
            have += child_blocks;
        }
        mask <<= 1;
    }

    if rank == root {
        debug_assert_eq!(have, size);
        for rel in 0..size {
            let abs = absolute_rank(rel, root, size);
            recvbuf[abs * block..(abs + 1) * block]
                .copy_from_slice(&stage[rel * block..(rel + 1) * block]);
        }
    }
    Ok(())
}

/// Emit the symbolic schedule of [`scatter_binomial`] in the *relative-order
/// staging* coordinates the executed code uses (slot `rel` = block of the
/// rank at relative position `rel`): the root holds all `P` slots initially
/// and every rank requires exactly its own slot at the end.
pub fn scatter_binomial_schedule(p: usize, block: usize, root: Rank) -> Schedule {
    let mut s = Schedule::new("scatter/binomial", p, block * p);
    s.ranks[root].mark_valid(0..block * p);
    for rank in 0..p {
        let relative = relative_rank(rank, root, p);
        s.ranks[rank].require(relative * block..(relative + 1) * block);
    }
    for rank in 0..p {
        let relative = relative_rank(rank, root, p);
        let mut have = if rank == root { p } else { 0 };

        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let src = absolute_rank(relative - mask, root, p);
                let subtree = mask.min(p - relative);
                s.ranks[rank].recv(
                    "scatter",
                    src,
                    Tag::SCATTER,
                    Loc::Buf(relative * block..(relative + subtree) * block),
                );
                have = subtree;
                break;
            }
            mask <<= 1;
        }

        mask >>= 1;
        while mask > 0 {
            if relative + mask < p {
                let child_rel = relative + mask;
                let child_blocks = have.saturating_sub(mask).min(mask.min(p - child_rel));
                if child_blocks > 0 {
                    let dst = absolute_rank(child_rel, root, p);
                    s.ranks[rank].send(
                        "scatter",
                        dst,
                        Tag::SCATTER,
                        Loc::Buf(child_rel * block..(child_rel + child_blocks) * block),
                    );
                    have -= child_blocks;
                }
            }
            mask >>= 1;
        }
    }
    s
}

/// Emit the symbolic schedule of [`gather_binomial`] in the same relative
/// staging coordinates: every rank's own slot starts valid and only the root
/// requires the full staging buffer at the end.
pub fn gather_binomial_schedule(p: usize, block: usize, root: Rank) -> Schedule {
    let mut s = Schedule::new("gather/binomial", p, block * p);
    for rank in 0..p {
        let relative = relative_rank(rank, root, p);
        s.ranks[rank].mark_valid(relative * block..(relative + 1) * block);
    }
    s.ranks[root].require(0..block * p);
    for rank in 0..p {
        let relative = relative_rank(rank, root, p);
        let mut have = 1usize;
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let dst = absolute_rank(relative - mask, root, p);
                s.ranks[rank].send(
                    "gather",
                    dst,
                    Tag::GATHER,
                    Loc::Buf(relative * block..(relative + have) * block),
                );
                break;
            }
            let child_rel = relative + mask;
            if child_rel < p {
                let child_blocks = mask.min(p - child_rel);
                s.ranks[rank].recv(
                    "gather",
                    absolute_rank(child_rel, root, p),
                    Tag::GATHER,
                    Loc::Buf(child_rel * block..(child_rel + child_blocks) * block),
                );
                have += child_blocks;
            }
            mask <<= 1;
        }
    }
    s
}

struct ScatterSource;
struct GatherSource;

impl ScheduleSource for ScatterSource {
    fn name(&self) -> &'static str {
        "scatter/binomial"
    }

    fn supports(&self, _p: usize) -> bool {
        true
    }

    fn schedule(&self, p: usize, nbytes: usize, root: Rank) -> Schedule {
        scatter_binomial_schedule(p, nbytes, root)
    }
}

impl ScheduleSource for GatherSource {
    fn name(&self) -> &'static str {
        "gather/binomial"
    }

    fn supports(&self, _p: usize) -> bool {
        true
    }

    fn schedule(&self, p: usize, nbytes: usize, root: Rank) -> Schedule {
        gather_binomial_schedule(p, nbytes, root)
    }
}

pub(crate) fn schedule_sources() -> Vec<Box<dyn ScheduleSource>> {
    vec![Box::new(ScatterSource), Box::new(GatherSource)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    fn root_payload(size: usize, block: usize) -> Vec<u8> {
        (0..size).flat_map(|r| (0..block).map(move |i| ((r * 37 + i * 11) % 251) as u8)).collect()
    }

    #[test]
    fn scatter_delivers_each_block() {
        for &(size, block, root) in &[
            (1usize, 4usize, 0usize),
            (2, 3, 1),
            (8, 16, 0),
            (8, 16, 5),
            (10, 7, 9),
            (13, 1, 6),
            (5, 0, 2),
        ] {
            let payload = root_payload(size, block);
            let out = ThreadWorld::run(size, |comm| {
                let sendbuf = if comm.rank() == root { payload.clone() } else { Vec::new() };
                let mut recvbuf = vec![0u8; block];
                scatter_binomial(comm, &sendbuf, &mut recvbuf, root).unwrap();
                recvbuf
            });
            for (rank, buf) in out.results.iter().enumerate() {
                assert_eq!(
                    buf,
                    &payload[rank * block..(rank + 1) * block],
                    "size={size} block={block} root={root} rank={rank}"
                );
            }
            // binomial scatter: exactly one message per non-root rank
            assert_eq!(out.traffic.total_msgs(), (size - 1) as u64);
        }
    }

    #[test]
    fn gather_collects_each_block() {
        for &(size, block, root) in &[
            (1usize, 4usize, 0usize),
            (2, 3, 0),
            (8, 16, 0),
            (8, 16, 3),
            (10, 7, 9),
            (13, 2, 12),
            (6, 0, 1),
        ] {
            let out = ThreadWorld::run(size, |comm| {
                let sendbuf: Vec<u8> =
                    (0..block).map(|i| ((comm.rank() * 37 + i * 11) % 251) as u8).collect();
                let mut recvbuf =
                    if comm.rank() == root { vec![0u8; block * size] } else { Vec::new() };
                gather_binomial(comm, &sendbuf, &mut recvbuf, root).unwrap();
                recvbuf
            });
            assert_eq!(
                out.results[root],
                root_payload(size, block),
                "size={size} block={block} root={root}"
            );
            assert_eq!(out.traffic.total_msgs(), (size - 1) as u64);
        }
    }

    #[test]
    fn scatter_then_gather_round_trips() {
        let (size, block, root) = (11usize, 9usize, 4usize);
        let payload = root_payload(size, block);
        let out = ThreadWorld::run(size, |comm| {
            let sendbuf = if comm.rank() == root { payload.clone() } else { Vec::new() };
            let mut mine = vec![0u8; block];
            scatter_binomial(comm, &sendbuf, &mut mine, root).unwrap();
            let mut gathered =
                if comm.rank() == root { vec![0u8; block * size] } else { Vec::new() };
            gather_binomial(comm, &mine, &mut gathered, root).unwrap();
            gathered
        });
        assert_eq!(out.results[root], payload);
    }

    #[test]
    fn scatter_gather_message_sizes_follow_subtrees() {
        // Internal tree nodes carry whole subtrees: total wire bytes equal
        // sum over non-root ranks of subtree_blocks × block.
        let (size, block) = (10usize, 8usize);
        let payload = root_payload(size, block);
        let out = ThreadWorld::run(size, |comm| {
            let sendbuf = if comm.rank() == 0 { payload.clone() } else { Vec::new() };
            let mut recvbuf = vec![0u8; block];
            scatter_binomial(comm, &sendbuf, &mut recvbuf, 0).unwrap();
        });
        let expected: usize =
            (1..size).map(|rel| crate::scatter::owned_chunks(rel, size) * block).sum();
        assert_eq!(out.traffic.total_bytes(), expected as u64);
    }
}
