//! Multi-core-aware (SMP) broadcast — the three-phase scheme the paper's
//! Section I describes for medium messages with non-power-of-two process
//! counts:
//!
//! 1. intra-node broadcast on the **root's node** (binomial tree),
//! 2. **inter-node** broadcast among the node leaders
//!    (scatter-ring-allgather — native or tuned),
//! 3. intra-node broadcast on **every other node** (binomial tree).
//!
//! Rank→node placement is *block* (consecutive ranks fill a node before the
//! next node starts), which is the default placement on the paper's Hornet
//! system.

use mpsim::{Communicator, Rank, Result, SubComm};

use crate::bcast::{append_bcast_ops, bcast_with, Algorithm};
use crate::binomial::{append_binomial_ops, bcast_binomial};
use crate::schedule::{Schedule, ScheduleSource};

/// Block placement of ranks onto nodes with a fixed number of cores per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeMap {
    /// Ranks per node (24 on Hornet, 8 on Laki).
    pub cores_per_node: usize,
}

impl NodeMap {
    /// New block placement with `cores_per_node` ranks per node.
    pub fn new(cores_per_node: usize) -> Self {
        assert!(cores_per_node >= 1);
        Self { cores_per_node }
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: Rank) -> usize {
        rank / self.cores_per_node
    }

    /// Number of nodes needed for a world of `size` ranks.
    pub fn node_count(&self, size: usize) -> usize {
        size.div_ceil(self.cores_per_node)
    }

    /// Leader (lowest rank) of `node`.
    pub fn leader_of(&self, node: usize) -> Rank {
        node * self.cores_per_node
    }

    /// All ranks of `node` within a world of `size` ranks.
    pub fn ranks_of(&self, node: usize, size: usize) -> Vec<Rank> {
        let start = node * self.cores_per_node;
        let end = (start + self.cores_per_node).min(size);
        (start..end).collect()
    }

    /// Whether two ranks share a node — the intra/inter classifier used by
    /// traffic splitting and the cluster simulator.
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

/// Three-phase SMP-aware broadcast.
///
/// `inter_algorithm` selects the inter-node (leader) phase —
/// [`Algorithm::ScatterRingNative`] reproduces the MPICH3 behaviour the paper
/// describes, [`Algorithm::ScatterRingTuned`] is the optimized variant.
pub fn bcast_smp(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
    nodes: &NodeMap,
    inter_algorithm: Algorithm,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    let rank = comm.rank();
    if size == 1 {
        return Ok(());
    }

    let root_node = nodes.node_of(root);
    let my_node = nodes.node_of(rank);

    // Phase 1: intra-node broadcast on the root's node so its leader holds
    // the data.
    if my_node == root_node {
        let members = nodes.ranks_of(root_node, size);
        if members.len() > 1 {
            let sub = SubComm::new(comm, members)
                // lint: allow(panic) — NodeMap invariant: this rank is on the root node
                .expect("rank is on the root node but missing from member list");
            // lint: allow(panic) — NodeMap invariant: root is a member of its own node
            let local_root = sub.from_parent(root).expect("root missing from its own node");
            bcast_binomial(&sub, buf, local_root)?;
        }
    }

    // Phase 2: inter-node broadcast among node leaders.
    let leaders: Vec<Rank> = (0..nodes.node_count(size)).map(|n| nodes.leader_of(n)).collect();
    if leaders.len() > 1 {
        if let Some(sub) = SubComm::new(comm, leaders) {
            let local_root =
                // lint: allow(panic) — NodeMap invariant: leaders list is built from leader_of
                sub.from_parent(nodes.leader_of(root_node)).expect("root node has no leader");
            bcast_with(&sub, buf, local_root, inter_algorithm)?;
        }
    }

    // Phase 3: intra-node broadcast on every node except the root's.
    if my_node != root_node {
        let members = nodes.ranks_of(my_node, size);
        if members.len() > 1 {
            let sub =
                // lint: allow(panic) — NodeMap invariant: ranks_of(my_node) contains this rank
                SubComm::new(comm, members).expect("rank missing from its own node's member list");
            let local_root = sub
                .from_parent(nodes.leader_of(my_node))
                // lint: allow(panic) — NodeMap invariant: a node always contains its leader
                .expect("node leader missing from node members");
            bcast_binomial(&sub, buf, local_root)?;
        }
    }
    Ok(())
}

/// Emit the symbolic schedule of [`bcast_smp`]: each phase is emitted on its
/// sub-world and spliced into the full-world schedule with rank translation,
/// reproducing the per-rank program order of the executed three-phase code
/// (root-node intra, leader inter, other-node intra).
pub fn bcast_smp_schedule(
    p: usize,
    nbytes: usize,
    root: Rank,
    nodes: &NodeMap,
    inter_algorithm: Algorithm,
) -> Schedule {
    let name = match inter_algorithm {
        Algorithm::ScatterRingTuned => "bcast/smp_tuned",
        Algorithm::ScatterRingNative => "bcast/smp_native",
        Algorithm::Binomial => "bcast/smp_binomial",
        Algorithm::ScatterRdAllgather => "bcast/smp_scatter_rd",
    };
    let mut s = Schedule::new(name, p, nbytes);
    s.ranks[root].mark_valid(0..nbytes);
    for rank in 0..p {
        s.ranks[rank].require(0..nbytes);
    }
    if p == 1 {
        return s;
    }
    let root_node = nodes.node_of(root);

    // Phase 1: intra-node broadcast on the root's node.
    let members = nodes.ranks_of(root_node, p);
    if members.len() > 1 {
        let local_root = members.iter().position(|&m| m == root).unwrap_or(0);
        let mut sub = Schedule::new("smp/phase1", members.len(), nbytes);
        append_binomial_ops(&mut sub, local_root);
        s.splice(&sub, &members);
    }

    // Phase 2: inter-node broadcast among node leaders.
    let leaders: Vec<Rank> = (0..nodes.node_count(p)).map(|n| nodes.leader_of(n)).collect();
    if leaders.len() > 1 {
        let mut sub = Schedule::new("smp/phase2", leaders.len(), nbytes);
        append_bcast_ops(&mut sub, root_node, inter_algorithm);
        s.splice(&sub, &leaders);
    }

    // Phase 3: intra-node broadcast on every other node, rooted at its leader.
    for node in 0..nodes.node_count(p) {
        if node == root_node {
            continue;
        }
        let members = nodes.ranks_of(node, p);
        if members.len() > 1 {
            let mut sub = Schedule::new("smp/phase3", members.len(), nbytes);
            append_binomial_ops(&mut sub, 0);
            s.splice(&sub, &members);
        }
    }
    s
}

struct SmpSource {
    inter: Algorithm,
}

impl ScheduleSource for SmpSource {
    fn name(&self) -> &'static str {
        match self.inter {
            Algorithm::ScatterRingTuned => "bcast/smp_tuned",
            _ => "bcast/smp_native",
        }
    }

    fn supports(&self, _p: usize) -> bool {
        true
    }

    fn schedule(&self, p: usize, nbytes: usize, root: Rank) -> Schedule {
        bcast_smp_schedule(p, nbytes, root, &NodeMap::new(4), self.inter)
    }
}

pub(crate) fn schedule_sources() -> Vec<Box<dyn ScheduleSource>> {
    vec![
        Box::new(SmpSource { inter: Algorithm::ScatterRingNative }),
        Box::new(SmpSource { inter: Algorithm::ScatterRingTuned }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 101 + 17) as u8).collect()
    }

    #[test]
    fn node_map_block_placement() {
        let m = NodeMap::new(4);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(3), 0);
        assert_eq!(m.node_of(4), 1);
        assert_eq!(m.node_count(9), 3);
        assert_eq!(m.leader_of(2), 8);
        assert_eq!(m.ranks_of(2, 9), vec![8]);
        assert_eq!(m.ranks_of(1, 9), vec![4, 5, 6, 7]);
        assert!(m.same_node(5, 6));
        assert!(!m.same_node(3, 4));
    }

    #[test]
    fn smp_bcast_completes() {
        for &(size, cpn, nbytes, root) in &[
            (12usize, 4usize, 120usize, 0usize),
            (12, 4, 120, 5), // root not a leader
            (10, 4, 97, 9),  // ragged last node, root on it
            (9, 3, 50, 4),
            (8, 8, 64, 3), // single node
            (6, 1, 30, 2), // one rank per node (pure inter)
            (24, 6, 12288, 13),
        ] {
            for algorithm in [Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned] {
                let src = pattern(nbytes);
                ThreadWorld::run(size, |comm| {
                    let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
                    bcast_smp(comm, &mut buf, root, &NodeMap::new(cpn), algorithm).unwrap();
                    assert_eq!(buf, src, "rank {} (size={size} cpn={cpn})", comm.rank());
                });
            }
        }
    }

    #[test]
    fn inter_node_traffic_only_between_leaders() {
        let (size, cpn) = (12usize, 4usize);
        let nodes = NodeMap::new(cpn);
        let out = ThreadWorld::run(size, |comm| {
            let mut buf = if comm.rank() == 0 { pattern(120) } else { vec![0u8; 120] };
            bcast_smp(comm, &mut buf, 0, &NodeMap::new(cpn), Algorithm::ScatterRingTuned).unwrap();
        });
        for (src, st) in out.traffic.per_rank.iter().enumerate() {
            for (&dst, pt) in &st.by_peer {
                if pt.msgs_sent > 0 && !nodes.same_node(src, dst) {
                    // inter-node messages must be leader-to-leader
                    assert_eq!(src % cpn, 0, "non-leader {src} sent inter-node");
                    assert_eq!(dst % cpn, 0, "non-leader {dst} received inter-node");
                }
            }
        }
    }

    #[test]
    fn smp_tuned_reduces_inter_node_messages() {
        let (size, cpn, nbytes) = (20usize, 4usize, 400usize);
        let nodes = NodeMap::new(cpn);
        let count_inter = |algorithm: Algorithm| {
            let out = ThreadWorld::run(size, |comm| {
                let mut buf = if comm.rank() == 0 { pattern(nbytes) } else { vec![0u8; nbytes] };
                bcast_smp(comm, &mut buf, 0, &NodeMap::new(cpn), algorithm).unwrap();
            });
            out.traffic.split_msgs(|a, b| nodes.same_node(a, b)).1
        };
        let native = count_inter(Algorithm::ScatterRingNative);
        let tuned = count_inter(Algorithm::ScatterRingTuned);
        // 5 leaders: native ring 5·4 = 20 msgs + 4 scatter; tuned 5²−Σown.
        assert_eq!(native, 20 + 4);
        assert!(tuned < native, "tuned {tuned} native {native}");
    }

    #[test]
    fn single_rank_world_is_noop() {
        ThreadWorld::run(1, |comm| {
            let mut buf = vec![1, 2, 3];
            bcast_smp(comm, &mut buf, 0, &NodeMap::new(4), Algorithm::ScatterRingTuned).unwrap();
        });
    }
}
