//! Shared verification and harness helpers used by tests, examples and the
//! benchmark drivers.

use mpsim::{Communicator, Rank, Result, ThreadWorld, WorldTraffic};

use crate::bcast::{bcast_with, Algorithm};

/// Deterministic byte pattern: position-dependent so misplaced chunks are
/// detected, seed-dependent so distinct broadcasts are distinguishable.
pub fn pattern(nbytes: usize, seed: u64) -> Vec<u8> {
    // splitmix64-style mix so both position and seed affect the high bits
    (0..nbytes)
        .map(|i| {
            let mut x = (i as u64).wrapping_add(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (x ^ (x >> 31)) as u8
        })
        .collect()
}

/// Outcome of a threaded broadcast run.
#[derive(Debug)]
pub struct BcastRun {
    /// Aggregated traffic of the run.
    pub traffic: WorldTraffic,
    /// Whether every rank's buffer matched the root's source.
    pub correct: bool,
}

/// Execute `algorithm` on a [`ThreadWorld`] of `size` ranks broadcasting
/// `nbytes` from `root`, verifying every rank's result.
pub fn run_threaded(algorithm: Algorithm, size: usize, nbytes: usize, root: Rank) -> BcastRun {
    let src = pattern(nbytes, 0xBCA5_7000 + root as u64);
    let out = ThreadWorld::run(size, |comm| {
        let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
        // lint: allow(panic) — test harness: a failed broadcast must abort the check
        bcast_with(comm, &mut buf, root, algorithm).unwrap();
        buf == src
    });
    BcastRun { traffic: out.traffic, correct: out.results.iter().all(|&ok| ok) }
}

/// Run a caller-provided broadcast closure on every rank and verify the
/// result against the root's pattern. Returns the traffic on success.
pub fn check_bcast<F>(size: usize, nbytes: usize, root: Rank, bcast: F) -> WorldTraffic
where
    F: Fn(&dyn CommunicatorDyn, &mut [u8], Rank) -> Result<()> + Sync,
{
    let src = pattern(nbytes, 42);
    let out = ThreadWorld::run(size, |comm| {
        let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
        // lint: allow(panic) — test harness: a failed broadcast must abort the check
        bcast(comm, &mut buf, root).unwrap();
        assert_eq!(buf, src, "rank {} has wrong data", comm.rank());
    });
    out.traffic
}

/// Object-safe alias so closures can take any backend by reference.
pub trait CommunicatorDyn: Communicator {}
impl<T: Communicator + ?Sized> CommunicatorDyn for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_deterministic_and_seeded() {
        assert_eq!(pattern(64, 1), pattern(64, 1));
        assert_ne!(pattern(64, 1), pattern(64, 2));
        assert_eq!(pattern(0, 1), Vec::<u8>::new());
    }

    #[test]
    fn pattern_positions_differ() {
        let p = pattern(256, 7);
        // not all bytes equal (position-dependence)
        assert!(p.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn run_threaded_reports_correctness_and_traffic() {
        let run = run_threaded(Algorithm::ScatterRingTuned, 10, 100, 3);
        assert!(run.correct);
        assert_eq!(run.traffic.total_msgs(), 9 + 75);
        assert!(run.traffic.is_balanced());
    }

    #[test]
    fn check_bcast_with_closure() {
        let traffic =
            check_bcast(8, 64, 0, |comm, buf, root| crate::bcast::bcast_opt(comm, buf, root));
        assert_eq!(traffic.total_msgs(), 7 + 44);
    }
}
