//! Reduction collectives — `MPI_Reduce`, `MPI_Allreduce`,
//! `MPI_Reduce_scatter_block` — from the MPICH optimization repertoire the
//! paper's broadcast work sits inside (its reference 9 — Thakur,
//! Rabenseifner & Gropp, *Optimization of Collective Communication
//! Operations in MPICH*).
//!
//! All algorithms assume a **commutative and associative** operator (MPI's
//! built-in ops): combination order follows tree/exchange structure, not
//! rank order. Elements are (de)serialized via [`crate::dtype::Dtype`]; the
//! wire stays plain bytes.
//!
//! * [`reduce_binomial`] — binomial-tree reduce to a root (MPICH's
//!   short-message reduce).
//! * [`allreduce_rd`] — recursive-doubling allreduce with MPICH's
//!   non-power-of-two fold-in/fold-out pre- and post-steps.
//! * [`reduce_scatter_block_rh`] — recursive-halving reduce-scatter
//!   (power-of-two worlds, uniform blocks).
//! * [`allreduce_rabenseifner`] — reduce-scatter + recursive-doubling
//!   allgather: the long-message allreduce (falls back to [`allreduce_rd`]
//!   when blocks don't divide evenly or the world is not a power of two).

use mpsim::{absolute_rank, is_pof2, relative_rank, Communicator, Rank, Result, Tag};

use crate::dtype::{combine_into, decode, encode, Dtype};
use crate::schedule::{Loc, Schedule, ScheduleSource};

/// Tag block reserved for reductions.
const REDUCE: Tag = Tag(0xE0);
const ALLREDUCE: Tag = Tag(0xE1);
const RS: Tag = Tag(0xE2);

/// Binomial-tree reduce: after the call, `recvbuf` on `root` holds the
/// element-wise reduction of every rank's `sendbuf` under `op`; other ranks'
/// `recvbuf` contents are unspecified (pass an empty slice there).
pub fn reduce_binomial<T: Dtype>(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[T],
    recvbuf: &mut [T],
    op: impl Fn(T, T) -> T + Copy,
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    let rank = comm.rank();
    if rank == root {
        assert_eq!(recvbuf.len(), sendbuf.len(), "root receive buffer length mismatch");
    }

    let relative = relative_rank(rank, root, size);
    let mut acc = encode(sendbuf);
    let mut incoming = vec![0u8; acc.len()];

    // Collect children (nearest first), then forward to the parent.
    let mut mask = 1usize;
    while mask < size {
        if relative & mask != 0 {
            let parent = absolute_rank(relative - mask, root, size);
            comm.send(&acc, parent, REDUCE)?;
            break;
        }
        let child_rel = relative + mask;
        if child_rel < size {
            let child = absolute_rank(child_rel, root, size);
            let got = comm.recv(&mut incoming, child, REDUCE)?;
            debug_assert_eq!(got, acc.len());
            combine_into::<T>(&mut acc, &incoming, op);
        }
        mask <<= 1;
    }

    if rank == root {
        recvbuf.copy_from_slice(&decode::<T>(&acc));
    }
    Ok(())
}

/// Map a power-of-two-group rank back to a real rank under MPICH's fold-in
/// scheme (`rem` = ranks folded away).
#[inline]
fn unfold(newrank: usize, rem: usize) -> usize {
    if newrank < rem {
        newrank * 2 + 1
    } else {
        newrank + rem
    }
}

/// Recursive-doubling allreduce: `buf` on every rank ends as the reduction
/// of all ranks' inputs.
///
/// Non-power-of-two worlds use MPICH's fold: the first `2·rem` ranks pair
/// up (`rem = P − 2^⌊log2 P⌋`), evens fold their contribution into odds and
/// sit out the exchange, then receive the final result back.
pub fn allreduce_rd<T: Dtype>(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [T],
    op: impl Fn(T, T) -> T + Copy,
) -> Result<()> {
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    let rank = comm.rank();
    let pof2 = 1usize << (usize::BITS - 1 - size.leading_zeros());
    let rem = size - pof2;

    let mut acc = encode(buf);
    let mut incoming = vec![0u8; acc.len()];

    // Fold-in: evens among the first 2·rem ranks donate to their odd
    // neighbour and drop out of the exchange.
    let newrank = if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            comm.send(&acc, rank + 1, ALLREDUCE)?;
            None
        } else {
            comm.recv(&mut incoming, rank - 1, ALLREDUCE)?;
            combine_into::<T>(&mut acc, &incoming, op);
            Some(rank / 2)
        }
    } else {
        Some(rank - rem)
    };

    // Recursive doubling within the power-of-two group.
    if let Some(nr) = newrank {
        let mut mask = 1usize;
        while mask < pof2 {
            let partner = unfold(nr ^ mask, rem);
            comm.sendrecv(&acc, partner, ALLREDUCE, &mut incoming, partner, ALLREDUCE)?;
            combine_into::<T>(&mut acc, &incoming, op);
            mask <<= 1;
        }
    }

    // Fold-out: odds hand the finished result back to their even neighbour.
    if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            comm.recv(&mut acc, rank + 1, ALLREDUCE)?;
        } else {
            comm.send(&acc, rank - 1, ALLREDUCE)?;
        }
    }

    buf.copy_from_slice(&decode::<T>(&acc));
    Ok(())
}

/// Recursive-halving reduce-scatter with uniform blocks
/// (`MPI_Reduce_scatter_block`): every rank contributes `B × P` elements and
/// receives block `rank` (length `B`) of the element-wise reduction.
///
/// # Panics
///
/// Panics unless the world size is a power of two and
/// `sendbuf.len() == recvbuf.len() × P` — the regime MPICH uses it in.
pub fn reduce_scatter_block_rh<T: Dtype>(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[T],
    recvbuf: &mut [T],
    op: impl Fn(T, T) -> T + Copy,
) -> Result<()> {
    let size = comm.size();
    assert!(is_pof2(size), "recursive halving requires a power-of-two world");
    let block = recvbuf.len();
    assert_eq!(sendbuf.len(), block * size, "sendbuf must be recvbuf.len() × P");
    let rank = comm.rank();

    let mut acc = encode(sendbuf);
    let elem = T::SIZE;
    // Active block window [lo, hi) in block indices; halves every step.
    let mut lo = 0usize;
    let mut hi = size;
    let mut mask = size >> 1;
    let mut incoming = vec![0u8; (size / 2) * block * elem];
    while mask >= 1 {
        let partner = rank ^ mask;
        let mid = lo + (hi - lo) / 2;
        // The half containing our final block stays; the other half goes to
        // the partner (who is responsible for it).
        let (keep, give) =
            if rank & mask == 0 { ((lo, mid), (mid, hi)) } else { ((mid, hi), (lo, mid)) };
        let give_bytes = (give.1 - give.0) * block * elem;
        let keep_bytes = (keep.1 - keep.0) * block * elem;
        let (gs, ge) = (give.0 * block * elem, give.1 * block * elem);
        comm.sendrecv(&acc[gs..ge], partner, RS, &mut incoming[..keep_bytes], partner, RS)?;
        debug_assert_eq!(give_bytes + keep_bytes, (hi - lo) * block * elem);
        let (ks, ke) = (keep.0 * block * elem, keep.1 * block * elem);
        let mut kept = acc[ks..ke].to_vec();
        combine_into::<T>(&mut kept, &incoming[..keep_bytes], op);
        acc[ks..ke].copy_from_slice(&kept);
        lo = keep.0;
        hi = keep.1;
        mask >>= 1;
    }
    debug_assert_eq!((lo, hi), (rank, rank + 1));
    recvbuf.copy_from_slice(&decode::<T>(&acc[rank * block * elem..(rank + 1) * block * elem]));
    Ok(())
}

/// Rabenseifner's long-message allreduce: recursive-halving reduce-scatter
/// followed by a recursive-doubling allgather of the reduced blocks.
/// Falls back to [`allreduce_rd`] when the world is not a power of two or
/// the element count does not divide evenly.
pub fn allreduce_rabenseifner<T: Dtype>(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [T],
    op: impl Fn(T, T) -> T + Copy,
) -> Result<()> {
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    if !is_pof2(size) || !buf.len().is_multiple_of(size) {
        return allreduce_rd(comm, buf, op);
    }
    let block = buf.len() / size;
    if block == 0 {
        return Ok(()); // nothing to reduce
    }
    let mut mine = vec![buf[0]; block];
    reduce_scatter_block_rh(comm, buf, &mut mine, op)?;

    // Allgather the reduced blocks back (recursive doubling over bytes).
    let mut bytes = vec![0u8; buf.len() * T::SIZE];
    let mine_bytes = encode(&mine);
    let rank = comm.rank();
    let elem = T::SIZE;
    bytes[rank * block * elem..(rank + 1) * block * elem].copy_from_slice(&mine_bytes);
    let mut mask = 1usize;
    let mut round = 0u32;
    while mask < size {
        let partner = rank ^ mask;
        let my_block = (rank >> round) << round;
        let partner_block = (partner >> round) << round;
        let (ms, me) = (my_block * block * elem, (my_block + mask) * block * elem);
        let (ps, pe) = (partner_block * block * elem, (partner_block + mask) * block * elem);
        let (sb, rb) = mpsim::split_send_recv(&mut bytes, ms, me - ms, ps, pe - ps)?;
        comm.sendrecv(sb, partner, RS, rb, partner, RS)?;
        mask <<= 1;
        round += 1;
    }
    buf.copy_from_slice(&decode::<T>(&bytes));
    Ok(())
}

/// Emit the symbolic schedule of [`reduce_binomial`] for an encoded payload
/// of `nbytes` bytes per rank.
///
/// Reductions accumulate in place (every message is combined into a private
/// accumulator, not stored at a buffer offset), so the whole family is
/// modeled with [`Loc::Private`]: matching, deadlock and traffic analyses
/// apply in full; byte-coverage tracking does not.
pub fn reduce_binomial_schedule(p: usize, nbytes: usize, root: Rank) -> Schedule {
    let mut s = Schedule::new("reduce/binomial", p, 0);
    for rank in 0..p {
        let relative = relative_rank(rank, root, p);
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let parent = absolute_rank(relative - mask, root, p);
                s.ranks[rank].send("reduce", parent, REDUCE, Loc::Private(nbytes));
                break;
            }
            let child_rel = relative + mask;
            if child_rel < p {
                let child = absolute_rank(child_rel, root, p);
                s.ranks[rank].recv("reduce", child, REDUCE, Loc::Private(nbytes));
            }
            mask <<= 1;
        }
    }
    s
}

/// Append the per-rank ops of [`allreduce_rd`] (fold-in, recursive doubling,
/// fold-out) for an encoded payload of `nbytes` bytes.
fn append_allreduce_rd_ops(s: &mut Schedule, nbytes: usize) {
    let p = s.p;
    if p == 1 {
        return;
    }
    let pof2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
    let rem = p - pof2;
    for rank in 0..p {
        let newrank = if rank < 2 * rem {
            if rank.is_multiple_of(2) {
                s.ranks[rank].send("fold_in", rank + 1, ALLREDUCE, Loc::Private(nbytes));
                None
            } else {
                s.ranks[rank].recv("fold_in", rank - 1, ALLREDUCE, Loc::Private(nbytes));
                Some(rank / 2)
            }
        } else {
            Some(rank - rem)
        };
        if let Some(nr) = newrank {
            let mut mask = 1usize;
            while mask < pof2 {
                let partner = unfold(nr ^ mask, rem);
                s.ranks[rank].sendrecv(
                    "rd",
                    partner,
                    ALLREDUCE,
                    Loc::Private(nbytes),
                    partner,
                    ALLREDUCE,
                    Loc::Private(nbytes),
                );
                mask <<= 1;
            }
        }
        if rank < 2 * rem {
            if rank.is_multiple_of(2) {
                s.ranks[rank].recv("fold_out", rank + 1, ALLREDUCE, Loc::Private(nbytes));
            } else {
                s.ranks[rank].send("fold_out", rank - 1, ALLREDUCE, Loc::Private(nbytes));
            }
        }
    }
}

/// Emit the symbolic schedule of [`allreduce_rd`] for `nbytes` encoded bytes.
pub fn allreduce_rd_schedule(p: usize, nbytes: usize) -> Schedule {
    let mut s = Schedule::new("reduce/allreduce_rd", p, 0);
    append_allreduce_rd_ops(&mut s, nbytes);
    s
}

/// Append the per-rank ops of [`reduce_scatter_block_rh`] for `block_bytes`
/// encoded bytes per block (`P` blocks total).
fn append_reduce_scatter_rh_ops(s: &mut Schedule, block_bytes: usize) {
    let p = s.p;
    assert!(is_pof2(p), "recursive halving requires a power-of-two world");
    for rank in 0..p {
        let mut lo = 0usize;
        let mut hi = p;
        let mut mask = p >> 1;
        while mask >= 1 {
            let partner = rank ^ mask;
            let mid = lo + (hi - lo) / 2;
            let (keep, give) =
                if rank & mask == 0 { ((lo, mid), (mid, hi)) } else { ((mid, hi), (lo, mid)) };
            let give_bytes = (give.1 - give.0) * block_bytes;
            let keep_bytes = (keep.1 - keep.0) * block_bytes;
            s.ranks[rank].sendrecv(
                "rs",
                partner,
                RS,
                Loc::Private(give_bytes),
                partner,
                RS,
                Loc::Private(keep_bytes),
            );
            lo = keep.0;
            hi = keep.1;
            mask >>= 1;
        }
    }
}

/// Emit the symbolic schedule of [`reduce_scatter_block_rh`] for
/// `block_bytes` encoded bytes per block (power-of-two worlds only).
pub fn reduce_scatter_rh_schedule(p: usize, block_bytes: usize) -> Schedule {
    let mut s = Schedule::new("reduce/reduce_scatter_rh", p, 0);
    if p > 1 {
        append_reduce_scatter_rh_ops(&mut s, block_bytes);
    }
    s
}

/// Emit the symbolic schedule of [`allreduce_rabenseifner`] for `nbytes`
/// encoded bytes, including its fallbacks: non-power-of-two worlds or uneven
/// splits emit the [`allreduce_rd`] ops, a zero-length block emits nothing.
pub fn allreduce_rabenseifner_schedule(p: usize, nbytes: usize) -> Schedule {
    let mut s = Schedule::new("reduce/allreduce_rabenseifner", p, 0);
    if p == 1 {
        return s;
    }
    if !is_pof2(p) || !nbytes.is_multiple_of(p) {
        append_allreduce_rd_ops(&mut s, nbytes);
        return s;
    }
    let block = nbytes / p;
    if block == 0 {
        return s;
    }
    append_reduce_scatter_rh_ops(&mut s, block);
    // Recursive-doubling allgather of the reduced blocks (over bytes).
    for rank in 0..p {
        let mut mask = 1usize;
        while mask < p {
            let partner = rank ^ mask;
            // Each side ships its aligned group of `mask` reduced blocks.
            s.ranks[rank].sendrecv(
                "ag",
                partner,
                RS,
                Loc::Private(mask * block),
                partner,
                RS,
                Loc::Private(mask * block),
            );
            mask <<= 1;
        }
    }
    s
}

/// Which reduction algorithm a [`ReduceSource`] emits.
#[derive(Clone, Copy)]
enum ReduceKind {
    Binomial,
    AllreduceRd,
    ReduceScatterRh,
    Rabenseifner,
}

struct ReduceSource(ReduceKind);

impl ScheduleSource for ReduceSource {
    fn name(&self) -> &'static str {
        match self.0 {
            ReduceKind::Binomial => "reduce/binomial",
            ReduceKind::AllreduceRd => "reduce/allreduce_rd",
            ReduceKind::ReduceScatterRh => "reduce/reduce_scatter_rh",
            ReduceKind::Rabenseifner => "reduce/allreduce_rabenseifner",
        }
    }

    fn supports(&self, p: usize) -> bool {
        match self.0 {
            ReduceKind::ReduceScatterRh => is_pof2(p),
            _ => true,
        }
    }

    fn schedule(&self, p: usize, nbytes: usize, root: Rank) -> Schedule {
        match self.0 {
            ReduceKind::Binomial => reduce_binomial_schedule(p, nbytes, root),
            ReduceKind::AllreduceRd => allreduce_rd_schedule(p, nbytes),
            ReduceKind::ReduceScatterRh => reduce_scatter_rh_schedule(p, nbytes),
            ReduceKind::Rabenseifner => allreduce_rabenseifner_schedule(p, nbytes),
        }
    }
}

pub(crate) fn schedule_sources() -> Vec<Box<dyn ScheduleSource>> {
    vec![
        Box::new(ReduceSource(ReduceKind::Binomial)),
        Box::new(ReduceSource(ReduceKind::AllreduceRd)),
        Box::new(ReduceSource(ReduceKind::ReduceScatterRh)),
        Box::new(ReduceSource(ReduceKind::Rabenseifner)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    fn contribution(rank: usize, len: usize) -> Vec<u64> {
        (0..len).map(|i| ((rank + 1) * (i + 3)) as u64).collect()
    }

    fn expected_sum(size: usize, len: usize) -> Vec<u64> {
        (0..len).map(|i| (0..size).map(|r| ((r + 1) * (i + 3)) as u64).sum()).collect()
    }

    #[test]
    fn reduce_binomial_sums_to_root() {
        for &(size, len, root) in &[
            (1usize, 5usize, 0usize),
            (2, 4, 1),
            (8, 16, 0),
            (8, 16, 5),
            (10, 7, 9),
            (13, 1, 6),
            (6, 0, 2),
        ] {
            let out = ThreadWorld::run(size, |comm| {
                let mine = contribution(comm.rank(), len);
                let mut result = if comm.rank() == root { vec![0u64; len] } else { vec![] };
                reduce_binomial(comm, &mine, &mut result, |a, b| a + b, root).unwrap();
                result
            });
            assert_eq!(out.results[root], expected_sum(size, len), "size={size} root={root}");
            // binomial: one message per non-root rank
            assert_eq!(out.traffic.total_msgs(), (size - 1) as u64);
        }
    }

    #[test]
    fn reduce_binomial_max() {
        let (size, len) = (9usize, 6usize);
        let out = ThreadWorld::run(size, |comm| {
            let mine = contribution(comm.rank(), len);
            let mut result = if comm.rank() == 0 { vec![0u64; len] } else { vec![] };
            reduce_binomial(comm, &mine, &mut result, u64::max, 0).unwrap();
            result
        });
        assert_eq!(out.results[0], contribution(size - 1, len));
    }

    #[test]
    fn allreduce_rd_pof2_and_npof2() {
        for &(size, len) in &[
            (1usize, 4usize),
            (2, 8),
            (4, 5),
            (8, 16),
            (3, 4), // rem = 1
            (5, 9), // rem = 1
            (6, 2), // rem = 2
            (10, 12),
            (13, 3),
        ] {
            let out = ThreadWorld::run(size, |comm| {
                let mut buf = contribution(comm.rank(), len);
                allreduce_rd(comm, &mut buf, |a, b| a + b).unwrap();
                buf
            });
            let want = expected_sum(size, len);
            for (rank, got) in out.results.iter().enumerate() {
                assert_eq!(got, &want, "size={size} len={len} rank={rank}");
            }
        }
    }

    #[test]
    fn allreduce_rd_floats() {
        let (size, len) = (6usize, 5usize);
        let out = ThreadWorld::run(size, |comm| {
            // powers of two are exactly summable in f64 in any order
            let mut buf: Vec<f64> = (0..len).map(|i| (1u64 << (comm.rank() + i)) as f64).collect();
            allreduce_rd(comm, &mut buf, |a, b| a + b).unwrap();
            buf
        });
        let want: Vec<f64> =
            (0..len).map(|i| (0..size).map(|r| (1u64 << (r + i)) as f64).sum()).collect();
        for got in &out.results {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn reduce_scatter_block_delivers_reduced_blocks() {
        for &(size, block) in &[(2usize, 3usize), (4, 2), (8, 5), (16, 1)] {
            let out = ThreadWorld::run(size, |comm| {
                let mine = contribution(comm.rank(), block * size);
                let mut result = vec![0u64; block];
                reduce_scatter_block_rh(comm, &mine, &mut result, |a, b| a + b).unwrap();
                result
            });
            let want = expected_sum(size, block * size);
            for (rank, got) in out.results.iter().enumerate() {
                assert_eq!(
                    got,
                    &want[rank * block..(rank + 1) * block],
                    "size={size} block={block} rank={rank}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn reduce_scatter_rejects_npof2() {
        ThreadWorld::run(6, |comm| {
            let mine = vec![0u64; 12];
            let mut r = vec![0u64; 2];
            let _ = reduce_scatter_block_rh(comm, &mine, &mut r, |a, b| a + b);
        });
    }

    #[test]
    fn rabenseifner_matches_rd() {
        for &(size, len) in
            &[(4usize, 8usize), (8, 24), (8, 7 /* fallback */), (6, 12 /* fallback */)]
        {
            let out = ThreadWorld::run(size, |comm| {
                let mut buf = contribution(comm.rank(), len);
                allreduce_rabenseifner(comm, &mut buf, |a, b| a + b).unwrap();
                buf
            });
            let want = expected_sum(size, len);
            for got in &out.results {
                assert_eq!(got, &want, "size={size} len={len}");
            }
        }
    }

    #[test]
    fn rabenseifner_moves_fewer_bytes_than_rd_for_large_vectors() {
        // The point of the reduce-scatter formulation: 2·n·(P−1)/P bytes per
        // rank instead of n·log2(P).
        let (size, len) = (8usize, 4096usize);
        let run = |raben: bool| {
            ThreadWorld::run(size, |comm| {
                let mut buf = contribution(comm.rank(), len);
                if raben {
                    allreduce_rabenseifner(comm, &mut buf, |a, b| a + b).unwrap();
                } else {
                    allreduce_rd(comm, &mut buf, |a, b| a + b).unwrap();
                }
            })
            .traffic
            .total_bytes()
        };
        let rd = run(false);
        let raben = run(true);
        assert!(raben < rd, "rabenseifner {raben} !< rd {rd}");
    }
}
