//! Top-level broadcast entry points and MPICH3's algorithm selection.
//!
//! * [`bcast_native`] — `MPI_Bcast_native` of the paper: binomial scatter +
//!   **enclosed** ring allgather (the MPICH3 lmsg / mmsg-npof2 path).
//! * [`bcast_opt`] — `MPI_Bcast_opt`: binomial scatter + **tuned** ring
//!   allgather (the paper's contribution).
//! * [`bcast_binomial_tree`] — the smsg path (re-export of
//!   [`crate::binomial::bcast_binomial`]).
//! * [`bcast_scatter_rd`] — the mmsg-pof2 path (scatter + recursive doubling).
//! * [`bcast_auto`] — dispatch among the above with MPICH3's message-size /
//!   process-count thresholds ([`Thresholds`]), optionally substituting the
//!   tuned ring wherever the native ring would run.

use mpsim::{
    complete_now, is_pof2, AsyncCommunicator, Communicator, Rank, Result, SharedBuf, SyncComm,
};

use crate::binomial::{append_binomial_ops, bcast_binomial_async};
use crate::rd_allgather::{append_rd_ops, rd_allgather_async};
use crate::ring::{append_native_ring_ops, ring_allgather_native_async};
use crate::ring_tuned::{
    append_tuned_ring_ops, append_tuned_ring_ops_with, ring_allgather_tuned_async,
    ring_allgather_tuned_shared_async, Endpoint,
};
use crate::scatter::{append_scatter_ops, binomial_scatter_async, binomial_scatter_shared_async};
use crate::schedule::{Schedule, ScheduleSource};

/// MPICH3's broadcast switching thresholds (`MPIR_CVAR_BCAST_*`), in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// Below this the message is "short" → binomial tree
    /// (`MPIR_CVAR_BCAST_SHORT_MSG_SIZE`, default 12288).
    pub short_msg: usize,
    /// Below this (and ≥ `short_msg`) the message is "medium"; at or above it
    /// is "long" (`MPIR_CVAR_BCAST_LONG_MSG_SIZE`, default 524288).
    pub long_msg: usize,
    /// Worlds smaller than this always use binomial
    /// (`MPIR_CVAR_BCAST_MIN_PROCS`, default 8).
    pub min_procs: usize,
}

impl Default for Thresholds {
    /// The MPICH3 defaults quoted in the paper's Section V: 12288 and 524288
    /// bytes, minimum 8 processes.
    fn default() -> Self {
        Self { short_msg: 12288, long_msg: 524288, min_procs: 8 }
    }
}

/// Message-size regime under a given threshold configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// `nbytes < short_msg` (or a tiny world): latency-bound.
    Short,
    /// `short_msg ≤ nbytes < long_msg`: the paper's "mmsg".
    Medium,
    /// `nbytes ≥ long_msg`: the paper's "lmsg".
    Long,
}

impl Thresholds {
    /// Classify a message size.
    pub fn regime(&self, nbytes: usize) -> Regime {
        if nbytes < self.short_msg {
            Regime::Short
        } else if nbytes < self.long_msg {
            Regime::Medium
        } else {
            Regime::Long
        }
    }
}

/// The algorithm the MPICH3 dispatcher would run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Binomial tree over the whole buffer (smsg).
    Binomial,
    /// Binomial scatter + recursive-doubling allgather (mmsg-pof2).
    ScatterRdAllgather,
    /// Binomial scatter + enclosed ring allgather (lmsg / mmsg-npof2) —
    /// `MPI_Bcast_native`.
    ScatterRingNative,
    /// Binomial scatter + tuned non-enclosed ring allgather —
    /// `MPI_Bcast_opt`.
    ScatterRingTuned,
}

/// MPICH3's selection logic (`MPIR_Bcast_intra_auto`), §I and §V of the
/// paper. When `tuned` is set, the ring-based path resolves to the paper's
/// [`Algorithm::ScatterRingTuned`] instead of the native ring.
pub fn select_algorithm(nbytes: usize, size: usize, th: &Thresholds, tuned: bool) -> Algorithm {
    if nbytes < th.short_msg || size < th.min_procs {
        Algorithm::Binomial
    } else if nbytes < th.long_msg && is_pof2(size) {
        Algorithm::ScatterRdAllgather
    } else if tuned {
        Algorithm::ScatterRingTuned
    } else {
        Algorithm::ScatterRingNative
    }
}

/// `MPI_Bcast_native`: binomial scatter followed by the enclosed ring
/// allgather — MPICH3's long-message / medium-npof2 broadcast.
pub fn bcast_native(comm: &(impl Communicator + ?Sized), buf: &mut [u8], root: Rank) -> Result<()> {
    complete_now(bcast_native_async(&SyncComm::new(comm), buf, root))
}

/// Async core of [`bcast_native`] over any [`AsyncCommunicator`].
pub async fn bcast_native_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    binomial_scatter_async(comm, buf, root).await?;
    ring_allgather_native_async(comm, buf, root).await
}

/// `MPI_Bcast_opt`: binomial scatter followed by the **tuned** ring
/// allgather — the paper's bandwidth-saving broadcast.
pub fn bcast_opt(comm: &(impl Communicator + ?Sized), buf: &mut [u8], root: Rank) -> Result<()> {
    complete_now(bcast_opt_async(&SyncComm::new(comm), buf, root))
}

/// Async core of [`bcast_opt`] over any [`AsyncCommunicator`].
pub async fn bcast_opt_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    binomial_scatter_async(comm, buf, root).await?;
    ring_allgather_tuned_async(comm, buf, root).await
}

/// Root-side [`bcast_opt`] over an **immutable** source: the root only ever
/// reads its buffer in both phases (it never receives in the binomial
/// scatter and is `SendOnly` from step one of the tuned ring), so it can
/// broadcast straight from a shared slice instead of a defensive clone.
/// Non-root ranks keep calling [`bcast_opt`].
pub fn bcast_opt_root(comm: &(impl Communicator + ?Sized), src: &[u8], root: Rank) -> Result<()> {
    complete_now(bcast_opt_root_async(&SyncComm::new(comm), src, root))
}

/// Async core of [`bcast_opt_root`] over any [`AsyncCommunicator`].
///
/// Stages `src` into **one** shared envelope and feeds refcounted
/// sub-views of it to both phases, so the root's entire copy bill for the
/// broadcast is the single `nbytes` staging pass.
pub async fn bcast_opt_root_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    src: &[u8],
    root: Rank,
) -> Result<()> {
    let shared = comm.make_shared(src);
    bcast_opt_shared_async(comm, &shared, root).await
}

/// Root-side [`bcast_opt`] from an **already-shared** envelope: both phases
/// send [`SharedBuf::slice`] sub-views of `src`, copying nothing at all.
/// Callers that already hold the payload in a [`SharedBuf`] (e.g. the
/// event-world launcher) use this directly.
pub async fn bcast_opt_shared_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    src: &SharedBuf,
    root: Rank,
) -> Result<()> {
    binomial_scatter_shared_async(comm, src, root).await?;
    ring_allgather_tuned_shared_async(comm, src, root).await
}

/// Binomial-tree broadcast (MPICH3's short-message path).
pub fn bcast_binomial_tree(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    complete_now(bcast_binomial_async(&SyncComm::new(comm), buf, root))
}

/// Binomial scatter + recursive-doubling allgather (MPICH3's medium-message
/// power-of-two path). Requires a power-of-two world, like MPICH.
pub fn bcast_scatter_rd(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    complete_now(bcast_scatter_rd_async(&SyncComm::new(comm), buf, root))
}

/// Async core of [`bcast_scatter_rd`] over any [`AsyncCommunicator`].
pub async fn bcast_scatter_rd_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    binomial_scatter_async(comm, buf, root).await?;
    rd_allgather_async(comm, buf, root).await
}

/// Run one specific [`Algorithm`].
pub fn bcast_with(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
    algorithm: Algorithm,
) -> Result<()> {
    complete_now(bcast_with_async(&SyncComm::new(comm), buf, root, algorithm))
}

/// Async core of [`bcast_with`]: dispatch one [`Algorithm`] over any
/// [`AsyncCommunicator`] — the entry point event-world launches use.
pub async fn bcast_with_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
    algorithm: Algorithm,
) -> Result<()> {
    match algorithm {
        Algorithm::Binomial => bcast_binomial_async(comm, buf, root).await,
        Algorithm::ScatterRdAllgather => bcast_scatter_rd_async(comm, buf, root).await,
        Algorithm::ScatterRingNative => bcast_native_async(comm, buf, root).await,
        Algorithm::ScatterRingTuned => bcast_opt_async(comm, buf, root).await,
    }
}

/// Broadcast with MPICH3's automatic algorithm selection.
///
/// With `tuned = false` this behaves like stock MPICH3; with `tuned = true`
/// it is MPICH3 patched with the paper's optimization (the paper's "Laki"
/// setup, where the tuned ring was spliced into the MPI library itself).
pub fn bcast_auto(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
    th: &Thresholds,
    tuned: bool,
) -> Result<()> {
    complete_now(bcast_auto_async(&SyncComm::new(comm), buf, root, th, tuned))
}

/// Async core of [`bcast_auto`] over any [`AsyncCommunicator`].
pub async fn bcast_auto_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
    th: &Thresholds,
    tuned: bool,
) -> Result<()> {
    let algorithm = select_algorithm(buf.len(), comm.size(), th, tuned);
    bcast_with_async(comm, buf, root, algorithm).await
}

impl Algorithm {
    /// Stable schedule-source name of this algorithm.
    pub fn schedule_name(self) -> &'static str {
        match self {
            Algorithm::Binomial => "bcast/binomial",
            Algorithm::ScatterRdAllgather => "bcast/scatter_rd",
            Algorithm::ScatterRingNative => "bcast/scatter_ring_native",
            Algorithm::ScatterRingTuned => "bcast/scatter_ring_tuned",
        }
    }
}

/// Append the phases of `algorithm` to an existing schedule (used directly by
/// [`bcast_schedule`] and, on sub-worlds, by the SMP composite).
pub(crate) fn append_bcast_ops(s: &mut Schedule, root: Rank, algorithm: Algorithm) {
    match algorithm {
        Algorithm::Binomial => append_binomial_ops(s, root),
        Algorithm::ScatterRdAllgather => {
            append_scatter_ops(s, root);
            append_rd_ops(s, root);
        }
        Algorithm::ScatterRingNative => {
            append_scatter_ops(s, root);
            append_native_ring_ops(s, root);
        }
        Algorithm::ScatterRingTuned => {
            append_scatter_ops(s, root);
            append_tuned_ring_ops(s, root);
        }
    }
}

/// Emit the full symbolic schedule of [`bcast_with`]: the phases of the
/// chosen algorithm concatenated per rank, over one shared `nbytes` buffer.
pub fn bcast_schedule(algorithm: Algorithm, p: usize, nbytes: usize, root: Rank) -> Schedule {
    let mut s = Schedule::new(algorithm.schedule_name(), p, nbytes);
    s.ranks[root].mark_valid(0..nbytes);
    for rank in 0..p {
        s.ranks[rank].require(0..nbytes);
    }
    append_bcast_ops(&mut s, root, algorithm);
    s
}

/// [`bcast_schedule`] for the tuned ring with an injectable `(step, flag)`
/// function — the `schedcheck` mutation hook (see
/// [`crate::ring_tuned::append_tuned_ring_ops_with`]).
pub fn bcast_tuned_schedule_with(
    p: usize,
    nbytes: usize,
    root: Rank,
    step_flag_fn: impl Fn(Rank, usize) -> (usize, Endpoint),
) -> Schedule {
    let mut s = Schedule::new("bcast/scatter_ring_tuned", p, nbytes);
    s.ranks[root].mark_valid(0..nbytes);
    for rank in 0..p {
        s.ranks[rank].require(0..nbytes);
    }
    append_scatter_ops(&mut s, root);
    append_tuned_ring_ops_with(&mut s, root, step_flag_fn);
    s
}

struct BcastSource(Algorithm);

impl ScheduleSource for BcastSource {
    fn name(&self) -> &'static str {
        self.0.schedule_name()
    }

    fn supports(&self, p: usize) -> bool {
        self.0 != Algorithm::ScatterRdAllgather || is_pof2(p)
    }

    fn schedule(&self, p: usize, nbytes: usize, root: Rank) -> Schedule {
        bcast_schedule(self.0, p, nbytes, root)
    }
}

pub(crate) fn schedule_sources() -> Vec<Box<dyn ScheduleSource>> {
    vec![
        Box::new(BcastSource(Algorithm::Binomial)),
        Box::new(BcastSource(Algorithm::ScatterRdAllgather)),
        Box::new(BcastSource(Algorithm::ScatterRingNative)),
        Box::new(BcastSource(Algorithm::ScatterRingTuned)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 41 + 29) as u8).collect()
    }

    #[test]
    fn schedule_volume_matches_traffic_model() {
        use crate::traffic::bcast_volume;
        for &algorithm in &[
            Algorithm::Binomial,
            Algorithm::ScatterRingNative,
            Algorithm::ScatterRingTuned,
            Algorithm::ScatterRdAllgather,
        ] {
            for &(p, nbytes) in &[(8usize, 800usize), (8, 97), (16, 4096), (4, 3), (2, 1)] {
                let sched = bcast_schedule(algorithm, p, nbytes, 0);
                let (msgs, bytes) = sched.planned_volume();
                let v = bcast_volume(algorithm, nbytes, p);
                assert_eq!((msgs, bytes), (v.msgs, v.bytes), "{algorithm:?} p={p} n={nbytes}");
            }
        }
    }

    #[test]
    fn schedule_volume_matches_model_npof2() {
        use crate::traffic::bcast_volume;
        for &algorithm in
            &[Algorithm::Binomial, Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned]
        {
            for &(p, nbytes, root) in &[(10usize, 100usize, 7usize), (9, 55, 4), (13, 7, 12)] {
                let sched = bcast_schedule(algorithm, p, nbytes, root);
                let (msgs, bytes) = sched.planned_volume();
                let v = bcast_volume(algorithm, nbytes, p);
                assert_eq!((msgs, bytes), (v.msgs, v.bytes), "{algorithm:?} p={p} n={nbytes}");
            }
        }
    }

    #[test]
    fn default_thresholds_match_paper() {
        let th = Thresholds::default();
        assert_eq!(th.short_msg, 12288);
        assert_eq!(th.long_msg, 524288);
        assert_eq!(th.min_procs, 8);
        // Paper §V: "long messages should be larger than 524287 in bytes and
        // medium messages should be larger than 12287 and smaller than 524288".
        assert_eq!(th.regime(12287), Regime::Short);
        assert_eq!(th.regime(12288), Regime::Medium);
        assert_eq!(th.regime(524287), Regime::Medium);
        assert_eq!(th.regime(524288), Regime::Long);
    }

    #[test]
    fn selection_matches_mpich3() {
        let th = Thresholds::default();
        // smsg → binomial regardless of world size
        assert_eq!(select_algorithm(100, 256, &th, false), Algorithm::Binomial);
        // tiny world → binomial even for long messages
        assert_eq!(select_algorithm(1 << 20, 4, &th, false), Algorithm::Binomial);
        // mmsg-pof2 → recursive doubling
        assert_eq!(select_algorithm(65536, 64, &th, false), Algorithm::ScatterRdAllgather);
        // mmsg-npof2 → ring (the paper's first target case)
        assert_eq!(select_algorithm(65536, 129, &th, false), Algorithm::ScatterRingNative);
        assert_eq!(select_algorithm(65536, 129, &th, true), Algorithm::ScatterRingTuned);
        // lmsg → ring even for pof2 (the paper's second target case)
        assert_eq!(select_algorithm(1 << 20, 64, &th, false), Algorithm::ScatterRingNative);
        assert_eq!(select_algorithm(1 << 20, 64, &th, true), Algorithm::ScatterRingTuned);
        // boundary sizes
        assert_eq!(select_algorithm(12288, 9, &th, false), Algorithm::ScatterRingNative);
        assert_eq!(select_algorithm(524287, 16, &th, false), Algorithm::ScatterRdAllgather);
        assert_eq!(select_algorithm(524288, 16, &th, false), Algorithm::ScatterRingNative);
    }

    #[test]
    fn tuned_flag_only_affects_ring_paths() {
        let th = Thresholds::default();
        for &(nbytes, size) in &[(100usize, 256usize), (65536, 64), (1000, 4)] {
            let a = select_algorithm(nbytes, size, &th, false);
            let b = select_algorithm(nbytes, size, &th, true);
            if a == Algorithm::ScatterRingNative {
                assert_eq!(b, Algorithm::ScatterRingTuned);
            } else {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn all_algorithms_broadcast_correctly() {
        for &algorithm in
            &[Algorithm::Binomial, Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned]
        {
            for &(size, nbytes, root) in
                &[(8usize, 200usize, 0usize), (10, 97, 7), (9, 3, 4), (2, 1, 1)]
            {
                let src = pattern(nbytes);
                ThreadWorld::run(size, |comm| {
                    let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
                    bcast_with(comm, &mut buf, root, algorithm).unwrap();
                    assert_eq!(buf, src, "{algorithm:?} rank {}", comm.rank());
                });
            }
        }
        // RD path needs pof2 worlds
        for &(size, nbytes, root) in &[(8usize, 200usize, 5usize), (16, 97, 0), (4, 0, 3)] {
            let src = pattern(nbytes);
            ThreadWorld::run(size, |comm| {
                let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
                bcast_with(comm, &mut buf, root, Algorithm::ScatterRdAllgather).unwrap();
                assert_eq!(buf, src);
            });
        }
    }

    #[test]
    fn auto_dispatch_end_to_end() {
        // Pick sizes that exercise each branch with a small world.
        let th = Thresholds { short_msg: 64, long_msg: 256, min_procs: 4 };
        for &(size, nbytes) in &[
            (9usize, 16usize), // short → binomial
            (8, 128),          // medium pof2 → RD
            (9, 128),          // medium npof2 → ring
            (8, 512),          // long pof2 → ring
            (9, 512),          // long npof2 → ring
        ] {
            for tuned in [false, true] {
                let src = pattern(nbytes);
                ThreadWorld::run(size, |comm| {
                    let mut buf = if comm.rank() == 2 { src.clone() } else { vec![0u8; nbytes] };
                    bcast_auto(comm, &mut buf, 2, &th, tuned).unwrap();
                    assert_eq!(buf, src);
                });
            }
        }
    }

    #[test]
    fn tuned_auto_saves_messages_on_ring_paths() {
        let th = Thresholds { short_msg: 8, long_msg: 16, min_procs: 4 };
        let size = 10;
        let nbytes = 1000; // long → ring
        let src = pattern(nbytes);
        let run = |tuned: bool| {
            ThreadWorld::run(size, |comm| {
                let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                bcast_auto(comm, &mut buf, 0, &th, tuned).unwrap();
            })
            .traffic
            .total_msgs()
        };
        let native = run(false);
        let tuned = run(true);
        assert_eq!(native, 90 + 9);
        assert_eq!(tuned, 75 + 9);
    }
}
