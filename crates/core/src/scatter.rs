//! Binomial-tree scatter — phase one of the scatter-(ring|rd)-allgather
//! broadcasts (Figures 1 and 2 of the paper; `scatter_for_bcast` in MPICH).
//!
//! The root divides its `nbytes` buffer into `P` chunks and disseminates them
//! down a binomial tree rooted at itself: in the first step the root sends
//! the upper half of the chunks to the rank `P/2` (rounded to a power of two)
//! positions away, spawning a subtree, and so on. After `ceil(log2 P)` steps
//! every rank `r` (in root-relative numbering) holds the contiguous chunk
//! interval `[r, r + own(r))` where `own(r) = min(2^tz(r), P − r)` and
//! `tz` is the number of trailing zero bits (`own(0) = P` for the root).
//!
//! That ownership interval is exactly what the tuned ring allgather's
//! `(step, flag)` computation relies on — see [`crate::ring_tuned`].

use mpsim::{
    absolute_rank, complete_now, relative_rank, AsyncCommunicator, Communicator, Rank, Result,
    SharedBuf, SyncComm, Tag,
};

use crate::chunks::ChunkLayout;
use crate::schedule::{Loc, Schedule};

/// Number of chunks rank `relative` (root-relative) holds after the scatter:
/// `min(2^trailing_zeros(relative), P − relative)`, with the root holding all
/// `P`.
///
/// This is the closed form of the binomial-tree delivery; it is validated
/// against the executed scatter in this module's tests and drives the
/// analytic traffic model.
pub fn owned_chunks(relative: Rank, size: usize) -> usize {
    debug_assert!(relative < size);
    if relative == 0 {
        size
    } else {
        let pow = 1usize << relative.trailing_zeros().min(usize::BITS - 1);
        pow.min(size - relative)
    }
}

/// Run the binomial scatter phase of a scatter-based broadcast.
///
/// `buf` is the full `nbytes` broadcast buffer on every rank; on entry only
/// the root's contents are meaningful. On return, rank `r` holds chunks
/// `[rel(r), rel(r) + owned_chunks(rel(r), P))` of the root's data in place.
///
/// Returns the number of payload bytes *present in this rank's buffer* (its
/// ownership in bytes): the full subtree span it received — forwarding to
/// children copies bytes onward but does not remove them.
pub fn binomial_scatter(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
) -> Result<usize> {
    complete_now(binomial_scatter_async(&SyncComm::new(comm), buf, root))
}

/// Async core of [`binomial_scatter`]: the identical tree walk over any
/// [`AsyncCommunicator`] — the event executor polls it natively, while the
/// blocking backends drive it to completion through [`SyncComm`].
///
/// Zero-copy payload flow: the root stages its buffer into one shared
/// envelope and every hop forwards refcounted *sub-views* of the arriving
/// envelope ([`SharedBuf::slice`]), so a rank's only copy is landing its
/// own subtree span in its user buffer. Wire traffic (message count,
/// sizes, order, tags) is identical to the classic copy walk.
pub async fn binomial_scatter_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
) -> Result<usize> {
    comm.check_rank(root)?;
    let size = comm.size();
    let rank = comm.rank();
    let nbytes = buf.len();
    let layout = ChunkLayout::new(nbytes, size);
    let scatter_size = layout.scatter_size();
    let relative = relative_rank(rank, root, size);

    if relative == 0 {
        // The root reads, never writes: stage once and send shared slices.
        let shared = comm.make_shared(buf);
        return binomial_scatter_shared_async(comm, &shared, root).await;
    }

    // Receive phase: wait for the parent (the rank that differs in our
    // lowest set bit) to deliver our subtree's chunks — taking ownership of
    // the arriving envelope instead of copying it out.
    let mut curr_size = 0;
    let mut disp = 0;
    let mut env = None;
    let mut mask = 1usize;
    while mask < size {
        if relative & mask != 0 {
            let src = absolute_rank(relative - mask, root, size);
            disp = (relative * scatter_size).min(nbytes);
            let capacity = nbytes - disp;
            // capacity == 0: message shorter than P chunks — nothing
            // addressed to us, so no receive is posted.
            if capacity > 0 {
                let e = comm.recv_owned(capacity, src, Tag::SCATTER).await?;
                curr_size = e.len();
                env = Some(e);
            }
            break;
        }
        mask <<= 1;
    }

    // Ownership = everything delivered to our buffer; the send loop below
    // forwards subtree chunks onward but the bytes stay in place (the paper's
    // Figure 4/5 top rows list this retained set per rank).
    let owned_bytes = curr_size;

    if let Some(env) = env {
        // Send phase: peel off the upper half of what we hold for each
        // child, highest distance first (Figure 1's order: 0→4, 0→2, 0→1).
        // Each child's chunks are a tail of the received envelope: the
        // envelope starts at chunk `relative`, the child at `relative+mask`.
        mask >>= 1;
        while mask > 0 {
            if relative + mask < size {
                let send_size = curr_size.saturating_sub(scatter_size * mask);
                if send_size > 0 {
                    let dst = absolute_rank(relative + mask, root, size);
                    // Each iteration targets a *different* child of the
                    // binomial tree; nothing to coalesce.
                    // lint: allow(per-chunk-send)
                    let chunk = env.slice(scatter_size * mask..curr_size);
                    comm.send_shared(&chunk, dst, Tag::SCATTER).await?;
                    curr_size -= send_size;
                }
            }
            mask >>= 1;
        }
        // The single copy this rank pays: land the whole subtree span in
        // the user buffer (the allgather phase reads it from there).
        buf[disp..disp + env.len()].copy_from_slice(&env);
        comm.note_copy(env.len());
    }
    Ok(owned_bytes)
}

/// Root-side [`binomial_scatter`] over an **immutable** source buffer.
///
/// The root never receives in the binomial tree (the mask walk never matches
/// `relative = 0`) and its send phase only reads chunk ranges, so forcing
/// callers to hand over a `&mut` clone of the payload is pure waste — this
/// entry point broadcasts straight from a shared slice. Non-root ranks keep
/// using [`binomial_scatter`]. Returns `src.len()`, the root's retained
/// bytes, matching the mutable variant.
pub fn binomial_scatter_root(
    comm: &(impl Communicator + ?Sized),
    src: &[u8],
    root: Rank,
) -> Result<usize> {
    complete_now(binomial_scatter_root_async(&SyncComm::new(comm), src, root))
}

/// Async core of [`binomial_scatter_root`] — see [`binomial_scatter_async`].
///
/// Stages `src` into one shared envelope and delegates to
/// [`binomial_scatter_shared_async`], so the root pays exactly one
/// `nbytes` staging copy no matter how many children it feeds.
pub async fn binomial_scatter_root_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    src: &[u8],
    root: Rank,
) -> Result<usize> {
    let shared = comm.make_shared(src);
    binomial_scatter_shared_async(comm, &shared, root).await
}

/// Root-side scatter from an **already-shared** envelope: every child's
/// subtree is a refcounted sub-view ([`SharedBuf::slice`]) of `src`, so
/// this path copies nothing at all. Callers that already hold the payload
/// in a [`SharedBuf`] (e.g. the event-world launcher) use this directly;
/// [`binomial_scatter_root_async`] stages a plain slice first.
pub async fn binomial_scatter_shared_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    src: &SharedBuf,
    root: Rank,
) -> Result<usize> {
    comm.check_rank(root)?;
    assert_eq!(comm.rank(), root, "binomial_scatter_root must run on the root rank");
    let size = comm.size();
    let nbytes = src.len();
    let layout = ChunkLayout::new(nbytes, size);
    let scatter_size = layout.scatter_size();

    // Same send phase as `binomial_scatter` with `relative = 0`: peel off
    // the upper half of the held chunks for each child, highest first.
    let mut curr_size = nbytes;
    let mut mask = mpsim::ceil_pof2(size);
    while mask > 0 {
        if mask < size {
            let send_size = curr_size.saturating_sub(scatter_size * mask);
            if send_size > 0 {
                let dst = absolute_rank(mask, root, size);
                let disp = (mask * scatter_size).min(nbytes);
                // Each iteration targets a *different* child of the
                // binomial tree; nothing to coalesce. lint: allow(per-chunk-send)
                comm.send_shared(&src.slice(disp..disp + send_size), dst, Tag::SCATTER).await?;
                curr_size -= send_size;
            }
        }
        mask >>= 1;
    }
    Ok(nbytes)
}

/// Append the symbolic ops of [`binomial_scatter`] to `sched`, mirroring the
/// executed code's guards exactly (no receive posted when the rank's
/// displacement already exhausts the buffer; no send for an empty subtree).
///
/// The received length of each rank is the closed-form subtree span
/// `span(rel .. rel + own(rel))` — the property the executed scatter's tests
/// pin down — which lets every rank's `curr_size` bookkeeping be replayed
/// without cross-rank message lengths.
pub(crate) fn append_scatter_ops(sched: &mut Schedule, root: Rank) {
    let size = sched.p;
    let nbytes = sched.ranks[0].buf_len;
    let layout = ChunkLayout::new(nbytes, size);
    let scatter_size = layout.scatter_size();
    for rank in 0..size {
        let relative = relative_rank(rank, root, size);
        let mut curr_size = if rank == root { nbytes } else { 0 };
        let mut mask = 1usize;
        while mask < size {
            if relative & mask != 0 {
                let src = absolute_rank(relative - mask, root, size);
                let disp = (relative * scatter_size).min(nbytes);
                let capacity = nbytes - disp;
                if capacity == 0 {
                    curr_size = 0;
                } else {
                    sched.ranks[rank].recv("scatter", src, Tag::SCATTER, Loc::Buf(disp..nbytes));
                    let own = owned_chunks(relative, size);
                    curr_size = layout.span_bytes(relative..(relative + own).min(size));
                }
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if relative + mask < size {
                let send_size = curr_size.saturating_sub(scatter_size * mask);
                if send_size > 0 {
                    let dst = absolute_rank(relative + mask, root, size);
                    let disp = ((relative + mask) * scatter_size).min(nbytes);
                    sched.ranks[rank].send(
                        "scatter",
                        dst,
                        Tag::SCATTER,
                        Loc::Buf(disp..disp + send_size),
                    );
                    curr_size -= send_size;
                }
            }
            mask >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    /// Fill a reference pattern that makes positions distinguishable.
    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 + 7) as u8).collect()
    }

    /// Run the scatter on a thread world and return each rank's buffer and
    /// retained byte count.
    fn run_scatter(size: usize, nbytes: usize, root: Rank) -> (Vec<Vec<u8>>, Vec<usize>) {
        let src = pattern(nbytes);
        let out = ThreadWorld::run(size, |comm| {
            if comm.rank() == root {
                // Read-only on the root: scatter straight from the shared
                // source (the clone below is only for the test's result
                // shape, after all communication is done).
                let kept = binomial_scatter_root(comm, &src, root).unwrap();
                (src.clone(), kept)
            } else {
                let mut buf = vec![0u8; nbytes];
                let kept = binomial_scatter(comm, &mut buf, root).unwrap();
                (buf, kept)
            }
        });
        let (bufs, kept) = out.results.into_iter().unzip();
        (bufs, kept)
    }

    #[test]
    fn root_variant_traffic_matches_mutable_scatter() {
        for &(size, nbytes, root) in &[(8usize, 64usize, 0usize), (10, 97, 7), (13, 77, 3)] {
            let src = pattern(nbytes);
            let immutably = ThreadWorld::run(size, |comm| {
                if comm.rank() == root {
                    binomial_scatter_root(comm, &src, root).unwrap();
                } else {
                    let mut buf = vec![0u8; nbytes];
                    binomial_scatter(comm, &mut buf, root).unwrap();
                }
            })
            .traffic;
            let mutably = ThreadWorld::run(size, |comm| {
                let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
                binomial_scatter(comm, &mut buf, root).unwrap();
            })
            .traffic;
            assert_eq!(immutably.total_msgs(), mutably.total_msgs(), "size={size}");
            assert_eq!(immutably.total_bytes(), mutably.total_bytes(), "size={size}");
            assert_eq!(immutably.total_envelopes(), mutably.total_envelopes(), "size={size}");
        }
    }

    #[test]
    fn every_rank_gets_its_ownership_interval() {
        for &(size, nbytes) in
            &[(8usize, 64usize), (8, 61), (10, 100), (10, 97), (9, 55), (5, 3), (16, 1), (7, 0)]
        {
            let src = pattern(nbytes);
            let (bufs, kept) = run_scatter(size, nbytes, 0);
            let layout = ChunkLayout::new(nbytes, size);
            for rel in 0..size {
                let own = owned_chunks(rel, size);
                let span = layout.span(rel..(rel + own).min(size));
                assert_eq!(
                    &bufs[rel][span.clone()],
                    &src[span.clone()],
                    "size={size} nbytes={nbytes} rel={rel}"
                );
                assert_eq!(
                    kept[rel],
                    span.end - span.start,
                    "curr_size mismatch size={size} nbytes={nbytes} rel={rel}"
                );
            }
        }
    }

    #[test]
    fn nonzero_root_rotates_ownership() {
        let size = 10;
        let nbytes = 100;
        let root = 7;
        let src = pattern(nbytes);
        let (bufs, _) = run_scatter(size, nbytes, root);
        let layout = ChunkLayout::new(nbytes, size);
        for (rank, buf) in bufs.iter().enumerate() {
            let rel = mpsim::relative_rank(rank, root, size);
            let own = owned_chunks(rel, size);
            let span = layout.span(rel..(rel + own).min(size));
            assert_eq!(&buf[span.clone()], &src[span], "rank={rank} rel={rel}");
        }
    }

    #[test]
    fn owned_chunks_matches_paper_figure_1() {
        // P = 8 (Figure 4 top row): {all}, {1}, {2,3}, {3}, {4..7}, {5}, {6,7}, {7}
        let own: Vec<_> = (0..8).map(|r| owned_chunks(r, 8)).collect();
        assert_eq!(own, vec![8, 1, 2, 1, 4, 1, 2, 1]);
    }

    #[test]
    fn owned_chunks_matches_paper_figure_2() {
        // P = 10 (Figure 5 top row): root all, p4 gets {4..7}, p8 gets {8,9}
        let own: Vec<_> = (0..10).map(|r| owned_chunks(r, 10)).collect();
        assert_eq!(own, vec![10, 1, 2, 1, 4, 1, 2, 1, 2, 1]);
    }

    #[test]
    fn owned_chunks_covers_everything_exactly_via_tree() {
        // The union of [r, r+own(r)) over odd-level... simply: every chunk c
        // is owned by its scatter-tree ancestors only; the *sum* of owned
        // equals the total bytes retained, and every chunk is owned by at
        // least one rank (its own index).
        for size in 1..70 {
            for rel in 0..size {
                let own = owned_chunks(rel, size);
                assert!(own >= 1);
                assert!(rel + own <= size, "interval escapes: rel={rel} size={size}");
            }
        }
    }

    #[test]
    fn scatter_message_count_is_p_minus_1() {
        // Binomial scatter delivers exactly one message to every non-root rank.
        for &(size, nbytes) in &[(8usize, 64usize), (10, 100), (13, 77)] {
            let src = pattern(nbytes);
            let out = ThreadWorld::run(size, |comm| {
                let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                binomial_scatter(comm, &mut buf, 0).unwrap();
            });
            assert_eq!(out.traffic.total_msgs(), (size - 1) as u64);
            assert!(out.traffic.is_balanced());
        }
    }

    #[test]
    fn scatter_bytes_on_wire_match_subtree_sizes() {
        // Each rank receives exactly its subtree's bytes: total wire bytes =
        // sum over non-root ranks of span(rel..rel+own).
        let (size, nbytes) = (10, 97);
        let src = pattern(nbytes);
        let out = ThreadWorld::run(size, |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            binomial_scatter(comm, &mut buf, 0).unwrap();
        });
        let layout = ChunkLayout::new(nbytes, size);
        let expected: usize =
            (1..size).map(|rel| layout.span_bytes(rel..rel + owned_chunks(rel, size))).sum();
        assert_eq!(out.traffic.total_bytes(), expected as u64);
    }

    #[test]
    fn tiny_message_smaller_than_p() {
        // nbytes < P: trailing ranks receive nothing but must not hang.
        let (bufs, kept) = run_scatter(8, 3, 0);
        let src = pattern(3);
        assert_eq!(&bufs[0][..], &src[..]);
        assert_eq!(kept[0], 3);
        for rel in 1..3 {
            assert_eq!(bufs[rel][rel], src[rel]);
            assert_eq!(kept[rel], 1);
        }
        for &k in &kept[3..8] {
            assert_eq!(k, 0);
        }
    }

    #[test]
    fn single_rank_scatter_is_identity() {
        let (bufs, kept) = run_scatter(1, 10, 0);
        assert_eq!(bufs[0], pattern(10));
        assert_eq!(kept[0], 10);
    }

    #[test]
    fn zero_byte_scatter() {
        let (_, kept) = run_scatter(6, 0, 2);
        assert!(kept.iter().all(|&k| k == 0));
    }
}
