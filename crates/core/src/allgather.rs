//! Standalone `MPI_Allgather` — the collective whose *ring* variant MPICH
//! reuses inside the broadcast studied by the paper.
//!
//! In a true allgather every rank starts with exactly one block, so the
//! enclosed ring is *not* wasteful here — the redundancy the paper removes
//! only exists in the broadcast context, where the preceding binomial
//! scatter leaves subtree roots holding more than their own block. Having
//! the real collective alongside the broadcast-internal phase makes that
//! distinction concrete (and testable).
//!
//! Implemented variants mirror MPICH's repertoire:
//!
//! * [`allgather_ring`] — `P − 1` steps of neighbour exchange; bandwidth
//!   optimal (`(P−1)/P · n` bytes per rank), latency `O(P)`. MPICH's choice
//!   for long messages and medium/non-power-of-two.
//! * [`allgather_rd`] — recursive doubling, `log2 P` steps; power-of-two
//!   worlds only. MPICH's choice for short/medium power-of-two.
//! * [`allgather_bruck`] — Bruck's algorithm, `ceil(log2 P)` steps for *any*
//!   `P`, at the cost of a local re-rotation. MPICH's choice for short
//!   non-power-of-two.
//! * [`allgather_auto`] — MPICH's dispatcher over the above.

use mpsim::{
    ceil_log2, is_pof2, ring_left, ring_right, split_send_recv, Communicator, Result, Tag,
};

use crate::chunks::ChunkLayout;
use crate::schedule::{Loc, Schedule, ScheduleSource};

/// MPICH's allgather switching thresholds, in *total* gathered bytes
/// (`MPIR_CVAR_ALLGATHER_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllgatherThresholds {
    /// Below this total size, non-power-of-two worlds use Bruck
    /// (`ALLGATHER_SHORT_MSG_SIZE`, default 81920).
    pub short_msg: usize,
    /// Below this total size, power-of-two worlds use recursive doubling
    /// (`ALLGATHER_LONG_MSG_SIZE`, default 524288); at or above, everyone
    /// uses the ring.
    pub long_msg: usize,
}

impl Default for AllgatherThresholds {
    fn default() -> Self {
        Self { short_msg: 81920, long_msg: 524288 }
    }
}

/// Which allgather algorithm the dispatcher picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllgatherAlgorithm {
    /// Neighbour-exchange ring.
    Ring,
    /// Recursive doubling (power-of-two worlds).
    RecursiveDoubling,
    /// Bruck's dissemination algorithm.
    Bruck,
}

/// MPICH's selection: recursive doubling for power-of-two worlds below the
/// long threshold, Bruck for short non-power-of-two, ring otherwise.
pub fn select_allgather(
    total_bytes: usize,
    size: usize,
    th: &AllgatherThresholds,
) -> AllgatherAlgorithm {
    if total_bytes < th.long_msg && is_pof2(size) {
        AllgatherAlgorithm::RecursiveDoubling
    } else if total_bytes < th.short_msg {
        AllgatherAlgorithm::Bruck
    } else {
        AllgatherAlgorithm::Ring
    }
}

fn check_args(comm: &(impl Communicator + ?Sized), sendbuf: &[u8], recvbuf: &[u8]) -> Result<()> {
    let size = comm.size();
    assert_eq!(
        recvbuf.len(),
        sendbuf.len() * size,
        "allgather receive buffer must hold size × block bytes"
    );
    Ok(())
}

/// Ring allgather: at step `i`, forward the block received at step `i−1`
/// to the right neighbour while receiving a new one from the left.
pub fn allgather_ring(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
) -> Result<()> {
    check_args(comm, sendbuf, recvbuf)?;
    let size = comm.size();
    let rank = comm.rank();
    let block = sendbuf.len();
    let layout = ChunkLayout::new(block * size, size);

    recvbuf[layout.range(rank)].copy_from_slice(sendbuf);
    if size == 1 {
        return Ok(());
    }
    let left = ring_left(rank, size);
    let right = ring_right(rank, size);
    let mut j = rank;
    let mut jnext = left;
    for _ in 1..size {
        let send_range = layout.range(j);
        let recv_range = layout.range(jnext);
        let (sb, rb) = split_send_recv(
            recvbuf,
            send_range.start,
            send_range.len(),
            recv_range.start,
            recv_range.len(),
        )?;
        comm.sendrecv(sb, right, Tag::ALLGATHER, rb, left, Tag::ALLGATHER)?;
        j = jnext;
        jnext = ring_left(jnext, size);
    }
    Ok(())
}

/// Recursive-doubling allgather: `log2 P` pairwise block-interval exchanges.
///
/// # Panics
///
/// Panics on non-power-of-two worlds, mirroring MPICH's dispatch contract.
pub fn allgather_rd(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
) -> Result<()> {
    check_args(comm, sendbuf, recvbuf)?;
    let size = comm.size();
    assert!(is_pof2(size), "recursive-doubling allgather requires a power-of-two world");
    let rank = comm.rank();
    let block = sendbuf.len();
    let layout = ChunkLayout::new(block * size, size);

    recvbuf[layout.range(rank)].copy_from_slice(sendbuf);
    let mut mask = 1usize;
    let mut round = 0u32;
    while mask < size {
        let partner = rank ^ mask;
        let my_block = (rank >> round) << round;
        let partner_block = (partner >> round) << round;
        let send_span = layout.span(my_block..my_block + mask);
        let recv_span = layout.span(partner_block..partner_block + mask);
        let (sb, rb) = split_send_recv(
            recvbuf,
            send_span.start,
            send_span.len(),
            recv_span.start,
            recv_span.len(),
        )?;
        comm.sendrecv(sb, partner, Tag::ALLGATHER, rb, partner, Tag::ALLGATHER)?;
        mask <<= 1;
        round += 1;
    }
    Ok(())
}

/// Bruck allgather: `ceil(log2 P)` doubling steps on a rank-rotated layout,
/// then a local rotation back into rank order. Works for any `P`.
pub fn allgather_bruck(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
) -> Result<()> {
    check_args(comm, sendbuf, recvbuf)?;
    let size = comm.size();
    let rank = comm.rank();
    let block = sendbuf.len();

    // Work in a rotated space: slot k holds the block of rank (rank + k) % P.
    let mut tmp = vec![0u8; block * size];
    tmp[..block].copy_from_slice(sendbuf);

    let mut have = 1usize; // contiguous blocks held (rotated order)
    let rounds = if size > 1 { ceil_log2(size) } else { 0 };
    for k in 0..rounds {
        let dist = 1usize << k;
        let send_to = (rank + size - dist) % size;
        let recv_from = (rank + dist) % size;
        let count = have.min(size - have);
        let tag = Tag(Tag::ALLGATHER.0 + 1 + k);
        let (lo, hi) = tmp.split_at_mut(have * block);
        // Send my first `count` blocks; receive the next `count` blocks.
        comm.sendrecv(
            &lo[..count * block],
            send_to,
            tag,
            &mut hi[..count * block],
            recv_from,
            tag,
        )?;
        have += count;
        if have == size {
            break;
        }
    }
    debug_assert_eq!(have, size);

    // Rotate back: rotated slot k is the block of rank (rank + k) % P.
    for k in 0..size {
        let owner = (rank + k) % size;
        recvbuf[owner * block..(owner + 1) * block]
            .copy_from_slice(&tmp[k * block..(k + 1) * block]);
    }
    Ok(())
}

/// MPICH-style dispatcher over the three variants.
pub fn allgather_auto(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    th: &AllgatherThresholds,
) -> Result<()> {
    match select_allgather(sendbuf.len() * comm.size(), comm.size(), th) {
        AllgatherAlgorithm::RecursiveDoubling => allgather_rd(comm, sendbuf, recvbuf),
        AllgatherAlgorithm::Bruck => allgather_bruck(comm, sendbuf, recvbuf),
        AllgatherAlgorithm::Ring => allgather_ring(comm, sendbuf, recvbuf),
    }
}

/// Emit the symbolic schedule of [`allgather_ring`] for `block` bytes per
/// rank. The local copy of the own block becomes initial validity.
pub fn allgather_ring_schedule(p: usize, block: usize) -> Schedule {
    let layout = ChunkLayout::new(block * p, p);
    let mut s = Schedule::new("allgather/ring", p, block * p);
    for rank in 0..p {
        s.ranks[rank].mark_valid(layout.range(rank));
        s.ranks[rank].require(0..block * p);
    }
    if p == 1 {
        return s;
    }
    for rank in 0..p {
        let left = ring_left(rank, p);
        let right = ring_right(rank, p);
        let mut j = rank;
        let mut jnext = left;
        for _ in 1..p {
            s.ranks[rank].sendrecv(
                "ring",
                right,
                Tag::ALLGATHER,
                Loc::Buf(layout.range(j)),
                left,
                Tag::ALLGATHER,
                Loc::Buf(layout.range(jnext)),
            );
            j = jnext;
            jnext = ring_left(jnext, p);
        }
    }
    s
}

/// Emit the symbolic schedule of [`allgather_rd`] (power-of-two worlds).
pub fn allgather_rd_schedule(p: usize, block: usize) -> Schedule {
    assert!(is_pof2(p), "recursive-doubling allgather requires a power-of-two world");
    let layout = ChunkLayout::new(block * p, p);
    let mut s = Schedule::new("allgather/rd", p, block * p);
    for rank in 0..p {
        s.ranks[rank].mark_valid(layout.range(rank));
        s.ranks[rank].require(0..block * p);
    }
    for rank in 0..p {
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            let partner = rank ^ mask;
            let my_block = (rank >> round) << round;
            let partner_block = (partner >> round) << round;
            s.ranks[rank].sendrecv(
                "rd",
                partner,
                Tag::ALLGATHER,
                Loc::Buf(layout.span(my_block..my_block + mask)),
                partner,
                Tag::ALLGATHER,
                Loc::Buf(layout.span(partner_block..partner_block + mask)),
            );
            mask <<= 1;
            round += 1;
        }
    }
    s
}

/// Emit the symbolic schedule of [`allgather_bruck`], tracked in the
/// *rotated* staging space (slot `k` = block of rank `(rank + k) % P`): the
/// staging buffer is written once per slot, so coverage analysis applies;
/// the final local rotation back into rank order moves no messages.
pub fn allgather_bruck_schedule(p: usize, block: usize) -> Schedule {
    let mut s = Schedule::new("allgather/bruck", p, block * p);
    for rank in 0..p {
        s.ranks[rank].mark_valid(0..block);
        s.ranks[rank].require(0..block * p);
    }
    let rounds = if p > 1 { ceil_log2(p) } else { 0 };
    for rank in 0..p {
        let mut have = 1usize;
        for k in 0..rounds {
            let dist = 1usize << k;
            let send_to = (rank + p - dist) % p;
            let recv_from = (rank + dist) % p;
            let count = have.min(p - have);
            let tag = Tag(Tag::ALLGATHER.0 + 1 + k);
            s.ranks[rank].sendrecv(
                "bruck",
                send_to,
                tag,
                Loc::Buf(0..count * block),
                recv_from,
                tag,
                Loc::Buf(have * block..(have + count) * block),
            );
            have += count;
            if have == p {
                break;
            }
        }
    }
    s
}

struct AllgatherSource(AllgatherAlgorithm);

impl ScheduleSource for AllgatherSource {
    fn name(&self) -> &'static str {
        match self.0 {
            AllgatherAlgorithm::Ring => "allgather/ring",
            AllgatherAlgorithm::RecursiveDoubling => "allgather/rd",
            AllgatherAlgorithm::Bruck => "allgather/bruck",
        }
    }

    fn supports(&self, p: usize) -> bool {
        self.0 != AllgatherAlgorithm::RecursiveDoubling || is_pof2(p)
    }

    fn schedule(&self, p: usize, nbytes: usize, _root: usize) -> Schedule {
        match self.0 {
            AllgatherAlgorithm::Ring => allgather_ring_schedule(p, nbytes),
            AllgatherAlgorithm::RecursiveDoubling => allgather_rd_schedule(p, nbytes),
            AllgatherAlgorithm::Bruck => allgather_bruck_schedule(p, nbytes),
        }
    }
}

pub(crate) fn schedule_sources() -> Vec<Box<dyn ScheduleSource>> {
    vec![
        Box::new(AllgatherSource(AllgatherAlgorithm::Ring)),
        Box::new(AllgatherSource(AllgatherAlgorithm::RecursiveDoubling)),
        Box::new(AllgatherSource(AllgatherAlgorithm::Bruck)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    /// Run one variant and return every rank's gathered buffer + traffic.
    fn run(
        algo: AllgatherAlgorithm,
        size: usize,
        block: usize,
    ) -> (Vec<Vec<u8>>, mpsim::WorldTraffic) {
        let out = ThreadWorld::run(size, |comm| {
            let me = comm.rank() as u8;
            let sendbuf: Vec<u8> = (0..block).map(|i| me ^ (i as u8)).collect();
            let mut recvbuf = vec![0u8; block * comm.size()];
            match algo {
                AllgatherAlgorithm::Ring => allgather_ring(comm, &sendbuf, &mut recvbuf),
                AllgatherAlgorithm::RecursiveDoubling => allgather_rd(comm, &sendbuf, &mut recvbuf),
                AllgatherAlgorithm::Bruck => allgather_bruck(comm, &sendbuf, &mut recvbuf),
            }
            .unwrap();
            recvbuf
        });
        (out.results, out.traffic)
    }

    fn expected(size: usize, block: usize) -> Vec<u8> {
        (0..size).flat_map(|r| (0..block).map(move |i| (r as u8) ^ (i as u8))).collect()
    }

    #[test]
    fn ring_gathers_everything() {
        for &(size, block) in &[(1usize, 4usize), (2, 8), (8, 16), (10, 3), (13, 1), (7, 0)] {
            let (bufs, traffic) = run(AllgatherAlgorithm::Ring, size, block);
            let want = expected(size, block);
            for (rank, buf) in bufs.iter().enumerate() {
                assert_eq!(buf, &want, "ring size={size} block={block} rank={rank}");
            }
            assert!(traffic.is_balanced());
            // true allgather ring: exactly P(P−1) messages — here that IS optimal
            if size > 1 {
                assert_eq!(traffic.total_msgs(), (size * (size - 1)) as u64);
            }
        }
    }

    #[test]
    fn rd_gathers_everything_pof2() {
        for &(size, block) in &[(1usize, 5usize), (2, 7), (4, 4), (8, 9), (16, 2)] {
            let (bufs, traffic) = run(AllgatherAlgorithm::RecursiveDoubling, size, block);
            let want = expected(size, block);
            for buf in &bufs {
                assert_eq!(buf, &want, "rd size={size} block={block}");
            }
            if size > 1 {
                assert_eq!(traffic.total_msgs(), (size as u64) * u64::from(size.trailing_zeros()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rd_rejects_npof2() {
        run(AllgatherAlgorithm::RecursiveDoubling, 6, 4);
    }

    #[test]
    fn bruck_gathers_everything_any_p() {
        for &(size, block) in
            &[(1usize, 4usize), (2, 3), (3, 5), (5, 8), (8, 2), (10, 7), (13, 1), (9, 0)]
        {
            let (bufs, traffic) = run(AllgatherAlgorithm::Bruck, size, block);
            let want = expected(size, block);
            for (rank, buf) in bufs.iter().enumerate() {
                assert_eq!(buf, &want, "bruck size={size} block={block} rank={rank}");
            }
            // ceil(log2 P) steps, one message per rank per step
            if size > 1 {
                assert_eq!(traffic.total_msgs(), (size as u64) * u64::from(mpsim::ceil_log2(size)));
            }
        }
    }

    #[test]
    fn bruck_uses_fewer_messages_than_ring_for_npof2() {
        let (_, ring) = run(AllgatherAlgorithm::Ring, 10, 4);
        let (_, bruck) = run(AllgatherAlgorithm::Bruck, 10, 4);
        assert!(bruck.total_msgs() < ring.total_msgs());
    }

    #[test]
    fn selection_matches_mpich() {
        let th = AllgatherThresholds::default();
        assert_eq!(select_allgather(1024, 16, &th), AllgatherAlgorithm::RecursiveDoubling);
        assert_eq!(select_allgather(1024, 10, &th), AllgatherAlgorithm::Bruck);
        assert_eq!(select_allgather(100_000, 10, &th), AllgatherAlgorithm::Ring);
        assert_eq!(select_allgather(100_000, 16, &th), AllgatherAlgorithm::RecursiveDoubling);
        assert_eq!(select_allgather(1 << 20, 16, &th), AllgatherAlgorithm::Ring);
        assert_eq!(select_allgather(1 << 20, 10, &th), AllgatherAlgorithm::Ring);
    }

    #[test]
    fn auto_dispatch_correct_for_every_branch() {
        let th = AllgatherThresholds { short_msg: 64, long_msg: 256 };
        for &(size, block) in &[(8usize, 4usize), (10, 4), (8, 64), (10, 64), (10, 2)] {
            let out = ThreadWorld::run(size, |comm| {
                let me = comm.rank() as u8;
                let sendbuf: Vec<u8> = (0..block).map(|i| me ^ (i as u8)).collect();
                let mut recvbuf = vec![0u8; block * comm.size()];
                allgather_auto(comm, &sendbuf, &mut recvbuf, &th).unwrap();
                recvbuf
            });
            let want = expected(size, block);
            for buf in &out.results {
                assert_eq!(buf, &want, "auto size={size} block={block}");
            }
        }
    }
}
