//! The *native* enclosed ring allgather — phase two of MPICH3's
//! scatter-ring-allgather broadcast (Figure 3 of the paper) and the baseline
//! the tuned algorithm improves on.
//!
//! Every rank runs `P − 1` steps of `MPI_Sendrecv`: at step `i` it forwards
//! chunk `(rank − i + 1) mod P` (in root-relative numbering) to its right
//! neighbour while receiving chunk `(rank − i) mod P` from its left
//! neighbour. The ring is *enclosed*: each rank behaves as if it owned only
//! its own chunk after the scatter, so chunks a rank already holds (its
//! binomial subtree) are transmitted to it anyway — `P·(P−1)` transfers in
//! total, the paper's "verbose data transmissions".

use mpsim::{
    complete_now, relative_rank, ring_left, ring_right, AsyncCommunicator, Communicator, Rank,
    Result, SharedBuf, SyncComm, Tag,
};

use crate::chunks::ChunkLayout;
use crate::schedule::{Loc, Schedule};

/// One step of the ring walk: which chunk is sent right and which is
/// received from the left at step `i` (1-based), for a rank at root-relative
/// position `rel` in a ring of `size`.
///
/// Exposed for the schedule/traffic model, which replays the same walk
/// without a communicator.
#[inline]
pub fn ring_step_chunks(rel: Rank, size: usize, i: usize) -> (usize, usize) {
    debug_assert!((1..size).contains(&i));
    // j (sent) = rel − (i−1) mod size ; jnext (received) = rel − i mod size
    let send = (rel + size - ((i - 1) % size)) % size;
    let recv = (rel + size - (i % size)) % size;
    (send, recv)
}

/// Run the enclosed (native) ring allgather over a buffer that has been
/// binomial-scattered from `root`.
///
/// Transcribes the final loop of the paper's Listing 1 *without* the tuned
/// `step`/`flag` short-circuit: every rank does a full `sendrecv` at every
/// one of the `P − 1` steps.
pub fn ring_allgather_native(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    complete_now(ring_allgather_native_async(&SyncComm::new(comm), buf, root))
}

/// Async core of [`ring_allgather_native`]: the identical enclosed-ring walk
/// over any [`AsyncCommunicator`] — run natively by the event executor,
/// driven through [`SyncComm`] by the blocking backends.
///
/// Payload flow is a *hold chain*: the chunk sent at step `i` is exactly
/// the chunk received at step `i − 1`, so each step forwards the envelope
/// that just arrived ([`AsyncCommunicator::sendrecv_shared`], a refcount
/// clone) and pays one copy landing the new chunk in the user buffer. Only
/// the first step — our own chunk, never received — stages bytes from `buf`
/// via [`AsyncCommunicator::make_shared`]. Wire traffic is identical to the
/// classic sendrecv walk.
pub async fn ring_allgather_native_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    let rank = comm.rank();
    let layout = ChunkLayout::new(buf.len(), size);
    let left = ring_left(rank, size);
    let right = ring_right(rank, size);
    let rel = relative_rank(rank, root, size);

    let mut held: Option<SharedBuf> = None;
    for i in 1..size {
        let (send_chunk, recv_chunk) = ring_step_chunks(rel, size, i);
        let send_len = layout.range(send_chunk).len();
        let recv_range = layout.range(recv_chunk);
        // Borrow (don't clone) the forwarded envelope: the transport clones
        // it into the outgoing message itself, and at megascale the spared
        // refcount round-trip per step is measurable.
        let env = {
            let staged;
            let chunk = match &held {
                Some(env) if env.len() == send_len => env,
                // First step (or a held envelope that can't stand in): stage
                // the send chunk out of the user buffer.
                _ => {
                    staged = comm.make_shared(&buf[layout.range(send_chunk)]);
                    &staged
                }
            };
            comm.sendrecv_shared(
                chunk,
                right,
                Tag::ALLGATHER,
                recv_range.len(),
                left,
                Tag::ALLGATHER,
            )
            .await?
        };
        // Land the arriving chunk in the user buffer; keep the envelope to
        // forward on the next step.
        buf[recv_range.start..recv_range.start + env.len()].copy_from_slice(&env);
        comm.note_copy(env.len());
        held = Some(env);
    }
    Ok(())
}

/// Append the symbolic ops of [`ring_allgather_native`] to `sched`: every
/// rank performs the full `P − 1` enclosed-ring sendrecvs, chunk ranges from
/// the same [`ring_step_chunks`] walk as the executed code.
pub(crate) fn append_native_ring_ops(sched: &mut Schedule, root: Rank) {
    let size = sched.p;
    if size == 1 {
        return;
    }
    let layout = ChunkLayout::new(sched.ranks[0].buf_len, size);
    for rank in 0..size {
        let left = ring_left(rank, size);
        let right = ring_right(rank, size);
        let rel = relative_rank(rank, root, size);
        for i in 1..size {
            let (send_chunk, recv_chunk) = ring_step_chunks(rel, size, i);
            sched.ranks[rank].sendrecv(
                "ring",
                right,
                Tag::ALLGATHER,
                Loc::Buf(layout.range(send_chunk)),
                left,
                Tag::ALLGATHER,
                Loc::Buf(layout.range(recv_chunk)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::binomial_scatter;
    use mpsim::ThreadWorld;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 197 + 13) as u8).collect()
    }

    /// scatter + native ring = complete broadcast; returns traffic.
    fn run(size: usize, nbytes: usize, root: Rank) -> mpsim::WorldTraffic {
        let src = pattern(nbytes);
        let out = ThreadWorld::run(size, |comm| {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            binomial_scatter(comm, &mut buf, root).unwrap();
            ring_allgather_native(comm, &mut buf, root).unwrap();
            assert_eq!(buf, src, "rank {} incomplete", comm.rank());
        });
        out.traffic
    }

    #[test]
    fn step_chunks_walk_the_ring() {
        // Figure 3 for 8 processes: p_rel sends its own chunk first.
        let (send, recv) = ring_step_chunks(5, 8, 1);
        assert_eq!((send, recv), (5, 4));
        let (send, recv) = ring_step_chunks(5, 8, 2);
        assert_eq!((send, recv), (4, 3));
        // wrap-around
        let (send, recv) = ring_step_chunks(0, 8, 1);
        assert_eq!((send, recv), (0, 7));
        let (send, recv) = ring_step_chunks(0, 8, 7);
        assert_eq!((send, recv), (2, 1));
    }

    #[test]
    fn each_rank_receives_every_foreign_chunk_exactly_once() {
        // Over P−1 steps the received chunk indices are all chunks except rel.
        for size in 2..12 {
            for rel in 0..size {
                let mut seen: Vec<usize> =
                    (1..size).map(|i| ring_step_chunks(rel, size, i).1).collect();
                seen.sort_unstable();
                let expected: Vec<usize> = (0..size).filter(|&c| c != rel).collect();
                assert_eq!(seen, expected);
            }
        }
    }

    #[test]
    fn completes_broadcast_pof2() {
        run(8, 64, 0);
        run(8, 61, 3);
        run(16, 257, 15);
    }

    #[test]
    fn completes_broadcast_npof2() {
        run(10, 100, 0);
        run(10, 97, 7);
        run(9, 50, 4);
        run(3, 2, 1);
    }

    #[test]
    fn transfer_count_is_p_times_p_minus_1() {
        // Ring phase alone moves P·(P−1) messages; scatter adds P−1.
        for size in [4usize, 8, 10, 13] {
            let traffic = run(size, 16 * size, 0);
            let expected = (size * (size - 1) + (size - 1)) as u64;
            assert_eq!(traffic.total_msgs(), expected, "size={size}");
        }
    }

    #[test]
    fn paper_counts_8_and_10() {
        // Paper §IV: "The number of message transfers in the original ring
        // allgather algorithm is 8 × (8 − 1) = 56 for 8 processes" and
        // "10 × (10 − 1) = 90".
        let t8 = run(8, 80, 0);
        assert_eq!(t8.total_msgs() - 7, 56); // minus the 7 scatter messages
        let t10 = run(10, 100, 0);
        assert_eq!(t10.total_msgs() - 9, 90);
    }

    #[test]
    fn tiny_and_zero_messages() {
        run(8, 3, 0); // empty trailing chunks → zero-byte sendrecvs
        run(5, 0, 2); // all chunks empty
        run(2, 1, 0);
    }

    #[test]
    fn single_rank_is_noop() {
        let t = run(1, 10, 0);
        assert_eq!(t.total_msgs(), 0);
    }
}
