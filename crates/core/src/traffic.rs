//! Analytic traffic model — the paper's Section IV arithmetic in closed
//! form, plus byte-accurate replays of every algorithm's communication
//! schedule.
//!
//! The executed algorithms are instrumented (every backend counts messages
//! and bytes); this module predicts those counters *without running
//! anything*, so tests can require `measured == modelled` and the benchmark
//! harness can print the paper's transfer-count table for any `P`.

use mpsim::is_pof2;

use crate::bcast::Algorithm;
use crate::chunks::ChunkLayout;
use crate::ring::ring_step_chunks;
use crate::ring_tuned::{receives_at, sends_at, step_flag};
use crate::scatter::owned_chunks;

/// Message and byte totals of one collective invocation, summed over ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Volume {
    /// Total messages (each counted once, at the sender).
    pub msgs: u64,
    /// Total payload bytes on the wire.
    pub bytes: u64,
}

impl Volume {
    /// Component-wise sum.
    pub fn plus(self, other: Volume) -> Volume {
        Volume { msgs: self.msgs + other.msgs, bytes: self.bytes + other.bytes }
    }
}

/// Transfers of the *native* enclosed ring allgather: `P·(P−1)`
/// (paper §III: "there are totally data transmissions of P×(P−1)").
pub fn native_ring_msgs(p: usize) -> u64 {
    (p as u64) * (p as u64 - 1)
}

/// Transfers of the *tuned* ring allgather:
/// `P² − Σ_rel own(rel)` where `own` is the binomial-scatter ownership
/// ([`owned_chunks`]). Equals 44 for `P = 8` and 75 for `P = 10`.
pub fn tuned_ring_msgs(p: usize) -> u64 {
    if p == 1 {
        return 0;
    }
    let owned: u64 = (0..p).map(|rel| owned_chunks(rel, p) as u64).sum();
    (p as u64) * (p as u64) - owned
}

/// Messages saved by the tuned ring over the native ring:
/// `Σ own(rel) − P` (12 for `P = 8`, 15 for `P = 10`; grows with `P`).
pub fn ring_saving_msgs(p: usize) -> u64 {
    native_ring_msgs(p) - tuned_ring_msgs(p)
}

/// Transfers of the binomial scatter: one message per non-root rank *whose
/// subtree span is non-empty*. For `nbytes ≥ P` this is the familiar `P − 1`;
/// for very small messages trailing subtrees receive nothing (MPICH skips
/// the send when `send_size <= 0`).
pub fn scatter_msgs(nbytes: usize, p: usize) -> u64 {
    let layout = ChunkLayout::new(nbytes, p);
    (1..p).filter(|&rel| layout.span_bytes(rel..rel + owned_chunks(rel, p)) > 0).count() as u64
}

/// Byte volume of the binomial scatter for an `nbytes` broadcast: every
/// non-root rank receives exactly its subtree's span once.
pub fn scatter_bytes(nbytes: usize, p: usize) -> u64 {
    let layout = ChunkLayout::new(nbytes, p);
    (1..p).map(|rel| layout.span_bytes(rel..rel + owned_chunks(rel, p)) as u64).sum()
}

/// Replay the native ring schedule and total its byte volume.
pub fn native_ring_bytes(nbytes: usize, p: usize) -> u64 {
    let layout = ChunkLayout::new(nbytes, p);
    let mut bytes = 0u64;
    for rel in 0..p {
        for i in 1..p {
            let (send_chunk, _) = ring_step_chunks(rel, p, i);
            bytes += layout.count(send_chunk) as u64;
        }
    }
    bytes
}

/// Replay the tuned ring schedule and total its byte volume.
pub fn tuned_ring_bytes(nbytes: usize, p: usize) -> u64 {
    if p == 1 {
        return 0;
    }
    let layout = ChunkLayout::new(nbytes, p);
    let mut bytes = 0u64;
    for rel in 0..p {
        let (step, flag) = step_flag(rel, p);
        for i in 1..p {
            if sends_at(step, flag, p, i) {
                let (send_chunk, _) = ring_step_chunks(rel, p, i);
                bytes += layout.count(send_chunk) as u64;
            }
        }
    }
    bytes
}

/// Per-rank message counts in the tuned ring: `(sends, receives)` for the
/// rank at root-relative position `rel`.
pub fn tuned_ring_rank_msgs(rel: usize, p: usize) -> (u64, u64) {
    if p == 1 {
        return (0, 0);
    }
    let (step, flag) = step_flag(rel, p);
    let mut sends = 0;
    let mut recvs = 0;
    for i in 1..p {
        sends += u64::from(sends_at(step, flag, p, i));
        recvs += u64::from(receives_at(step, flag, p, i));
    }
    (sends, recvs)
}

/// Replay the recursive-doubling allgather and total its volume
/// (power-of-two `p` only, matching [`crate::rd_allgather`]).
pub fn rd_allgather_volume(nbytes: usize, p: usize) -> Volume {
    assert!(is_pof2(p));
    let layout = ChunkLayout::new(nbytes, p);
    let mut v = Volume::default();
    for rel in 0..p {
        let mut curr = layout.count(rel) as u64;
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            v.msgs += 1;
            v.bytes += curr;
            let partner = rel ^ mask;
            let block = (partner >> round) << round;
            curr += layout.span_bytes(block..(block + mask).min(p)) as u64;
            mask <<= 1;
            round += 1;
        }
    }
    v
}

/// Predicted total volume of a full broadcast under `algorithm`.
pub fn bcast_volume(algorithm: Algorithm, nbytes: usize, p: usize) -> Volume {
    if p == 1 {
        return Volume::default();
    }
    match algorithm {
        Algorithm::Binomial => Volume { msgs: p as u64 - 1, bytes: (p as u64 - 1) * nbytes as u64 },
        Algorithm::ScatterRdAllgather => {
            Volume { msgs: scatter_msgs(nbytes, p), bytes: scatter_bytes(nbytes, p) }
                .plus(rd_allgather_volume(nbytes, p))
        }
        Algorithm::ScatterRingNative => Volume {
            msgs: scatter_msgs(nbytes, p) + native_ring_msgs(p),
            bytes: scatter_bytes(nbytes, p) + native_ring_bytes(nbytes, p),
        },
        Algorithm::ScatterRingTuned => Volume {
            msgs: scatter_msgs(nbytes, p) + tuned_ring_msgs(p),
            bytes: scatter_bytes(nbytes, p) + tuned_ring_bytes(nbytes, p),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts() {
        assert_eq!(native_ring_msgs(8), 56);
        assert_eq!(tuned_ring_msgs(8), 44);
        assert_eq!(ring_saving_msgs(8), 12);
        assert_eq!(native_ring_msgs(10), 90);
        assert_eq!(tuned_ring_msgs(10), 75);
        assert_eq!(ring_saving_msgs(10), 15);
    }

    #[test]
    fn saving_grows_with_p() {
        // Paper §IV: "the decrement in the amount of the transferred data
        // will increase as the growing of the process count P".
        let mut prev = 0;
        for p in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            let s = ring_saving_msgs(p);
            assert!(s >= prev, "saving not monotone at p={p}");
            prev = s;
        }
    }

    #[test]
    fn tuned_never_exceeds_native() {
        for p in 1..300 {
            assert!(tuned_ring_msgs(p) <= native_ring_msgs(p.max(1)), "p={p}");
        }
    }

    #[test]
    fn per_rank_counts_sum_to_total() {
        for p in 2..100 {
            let total_sends: u64 = (0..p).map(|rel| tuned_ring_rank_msgs(rel, p).0).sum();
            let total_recvs: u64 = (0..p).map(|rel| tuned_ring_rank_msgs(rel, p).1).sum();
            assert_eq!(total_sends, tuned_ring_msgs(p), "p={p}");
            assert_eq!(total_recvs, tuned_ring_msgs(p), "p={p}");
        }
    }

    #[test]
    fn root_never_receives_last_never_sends() {
        for p in 2..64 {
            assert_eq!(tuned_ring_rank_msgs(0, p).1, 0, "root received, p={p}");
            assert_eq!(tuned_ring_rank_msgs(p - 1, p).0, 0, "last sent, p={p}");
            // both still do their useful direction at every step
            assert_eq!(tuned_ring_rank_msgs(0, p).0, p as u64 - 1);
            assert_eq!(tuned_ring_rank_msgs(p - 1, p).1, p as u64 - 1);
        }
    }

    #[test]
    fn byte_models_even_division() {
        // With nbytes divisible by P, native ring bytes = msgs × chunk.
        let (nbytes, p) = (800usize, 8usize);
        assert_eq!(native_ring_bytes(nbytes, p), 56 * 100);
        assert_eq!(tuned_ring_bytes(nbytes, p), 44 * 100);
    }

    #[test]
    fn byte_model_handles_ragged_chunks() {
        // 10 bytes over 4 ranks: chunks 3,3,3,1 — replay must honour counts.
        let native = native_ring_bytes(10, 4);
        // each rank sends each chunk except... native: every rank sends
        // chunks (rel, rel−1, rel−2) → over all ranks each chunk is sent
        // exactly 3 times: 3 × (3+3+3+1) = 30
        assert_eq!(native, 30);
        let tuned = tuned_ring_bytes(10, 4);
        assert!(tuned < native);
    }

    #[test]
    fn rd_volume_matches_formula() {
        // P log2 P messages; bytes = P · nbytes·(P−1)/P = nbytes(P−1) for
        // divisible sizes.
        let v = rd_allgather_volume(64, 8);
        assert_eq!(v.msgs, 8 * 3);
        assert_eq!(v.bytes, 64 * 7);
    }

    #[test]
    fn bcast_volume_composition() {
        let v = bcast_volume(Algorithm::ScatterRingTuned, 100, 10);
        assert_eq!(v.msgs, 9 + 75);
        let v = bcast_volume(Algorithm::ScatterRingNative, 100, 10);
        assert_eq!(v.msgs, 9 + 90);
        let v = bcast_volume(Algorithm::Binomial, 100, 10);
        assert_eq!(v.msgs, 9);
        assert_eq!(v.bytes, 900);
        assert_eq!(bcast_volume(Algorithm::ScatterRingTuned, 100, 1), Volume::default());
    }

    #[test]
    fn tuned_bytes_save_fraction_approaches_limit() {
        // For large pof2 P the owned sum ≈ P·log-ish…; just pin the trend:
        // the byte saving fraction is positive and below 50%.
        for p in [8usize, 16, 64, 128] {
            let nbytes = p * 64;
            let native = native_ring_bytes(nbytes, p) as f64;
            let tuned = tuned_ring_bytes(nbytes, p) as f64;
            let frac = 1.0 - tuned / native;
            assert!(frac > 0.0 && frac < 0.5, "p={p} frac={frac}");
        }
    }
}
