//! Minimal typed-element layer over the byte-oriented transport — the slice
//! of MPI's datatype machinery the reduction collectives need.
//!
//! The point-to-point layer moves raw bytes; reductions must interpret them
//! as elements to combine. [`Dtype`] provides safe, explicit (de)serialization
//! with fixed little-endian wire format, avoiding any `unsafe` transmutes.

/// A fixed-size element type with a defined wire encoding.
pub trait Dtype: Copy + Send + Sync + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Write the element at `out[..Self::SIZE]`.
    fn write(&self, out: &mut [u8]);
    /// Read an element from `b[..Self::SIZE]`.
    fn read(b: &[u8]) -> Self;
}

macro_rules! impl_dtype {
    ($($t:ty),*) => {$(
        impl Dtype for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn write(&self, out: &mut [u8]) {
                out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            fn read(b: &[u8]) -> Self {
                // lint: allow(panic) — slice length fixed to SIZE on the previous line
                <$t>::from_le_bytes(b[..Self::SIZE].try_into().unwrap())
            }
        }
    )*};
}

impl_dtype!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Encode a typed slice into a fresh byte vector.
pub fn encode<T: Dtype>(vals: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; vals.len() * T::SIZE];
    for (v, chunk) in vals.iter().zip(out.chunks_exact_mut(T::SIZE)) {
        v.write(chunk);
    }
    out
}

/// Decode a byte slice (length must be a multiple of `T::SIZE`) into values.
pub fn decode<T: Dtype>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(bytes.len() % T::SIZE, 0, "byte length not a multiple of element size");
    bytes.chunks_exact(T::SIZE).map(T::read).collect()
}

/// Combine `other` (encoded) into `acc` (encoded) element-wise with `op`:
/// `acc[i] = op(acc[i], other[i])`.
pub fn combine_into<T: Dtype>(acc: &mut [u8], other: &[u8], op: impl Fn(T, T) -> T) {
    assert_eq!(acc.len(), other.len(), "reduction operands differ in length");
    assert_eq!(acc.len() % T::SIZE, 0);
    for (a, b) in acc.chunks_exact_mut(T::SIZE).zip(other.chunks_exact(T::SIZE)) {
        op(T::read(a), T::read(b)).write(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        assert_eq!(decode::<u32>(&encode(&[1u32, 2, 3])), vec![1, 2, 3]);
        assert_eq!(decode::<f64>(&encode(&[1.5f64, -2.25])), vec![1.5, -2.25]);
        assert_eq!(decode::<i16>(&encode(&[-7i16, 300])), vec![-7, 300]);
        assert_eq!(decode::<u8>(&encode(&[255u8, 0])), vec![255, 0]);
    }

    #[test]
    fn wire_format_is_little_endian() {
        let e = encode(&[0x0102_0304u32]);
        assert_eq!(e, vec![4, 3, 2, 1]);
    }

    #[test]
    fn combine_elementwise() {
        let mut acc = encode(&[1u64, 10, 100]);
        let other = encode(&[2u64, 20, 200]);
        combine_into::<u64>(&mut acc, &other, |a, b| a + b);
        assert_eq!(decode::<u64>(&acc), vec![3, 30, 300]);
    }

    #[test]
    fn combine_order_is_acc_then_other() {
        let mut acc = encode(&[10i32]);
        combine_into::<i32>(&mut acc, &encode(&[3i32]), |a, b| a - b);
        assert_eq!(decode::<i32>(&acc), vec![7]);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn combine_rejects_mismatched_lengths() {
        let mut acc = encode(&[1u32]);
        combine_into::<u32>(&mut acc, &encode(&[1u32, 2]), |a, _| a);
    }

    #[test]
    fn empty_slices_work() {
        let e = encode::<f64>(&[]);
        assert!(e.is_empty());
        let mut acc = Vec::new();
        combine_into::<f64>(&mut acc, &[], |a, _| a);
    }
}
