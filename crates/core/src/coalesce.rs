//! Chunk-coalescing variant of the tuned ring allgather: same transfer
//! *schedule* as [`crate::ring_tuned`], fewer physical envelopes.
//!
//! The tuned ring moves one message per chunk transfer. Two observations let
//! several of those logical messages ride one wire envelope without changing
//! a byte of what moves:
//!
//! 1. **Sub-chunk pipelining** — each rank-chunk can be subdivided into
//!    `chunk_bytes`-sized sub-chunks (the unit a segmented transport would
//!    pipeline). Sent one-by-one they cost one envelope each; gathered
//!    through [`mpsim::Communicator::send_vectored`] they cost *one* envelope
//!    while still being accounted as `k` logical messages.
//! 2. **Degraded-tail merging** — a [`Endpoint::SendOnly`] rank stops
//!    receiving precisely because everything it will send for the rest of
//!    the ring is already in its buffer. Its remaining per-step lone sends
//!    (chunks `rel−i+1` for the degraded steps `i`) can therefore depart as
//!    a single vectored envelope at the first degraded step. The merged
//!    chunk set wraps around the buffer end for the root, which is exactly
//!    the case that needs a genuine multi-span (iovec) descriptor.
//!
//! The `sendrecv` phase has a data dependency that forbids cross-step
//! merging — the chunk sent at step `i+1` only arrives at step `i` — so
//! coalescing there is limited to the sub-chunks of one chunk.
//!
//! Every coalescing decision is **pairwise consistent**: a directed ring
//! edge's envelope structure is a pure function of the *sender's*
//! root-relative position, the chunk geometry and the [`CoalescePolicy`],
//! all of which the receiver also knows. Sender and receiver therefore
//! always agree on how many envelopes cross the edge and which spans each
//! carries; per-`(source, tag)` FIFO ordering does the rest.
//!
//! With `max_envelope = 0` nothing ever coalesces and the executed traffic
//! degenerates to one envelope per sub-chunk — the per-chunk baseline the
//! `ring_coalesce` benchmark compares against.

use mpsim::{
    complete_now, relative_rank, ring_left, ring_right, AsyncCommunicator, Communicator, IoSpan,
    Rank, Result, SyncComm, Tag,
};

use crate::chunks::ChunkLayout;
use crate::ring::ring_step_chunks;
use crate::ring_tuned::{step_flag, Endpoint};
use crate::scatter::{binomial_scatter_async, binomial_scatter_root_async};

/// Tuning knobs of the coalescing ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescePolicy {
    /// Sub-chunk granularity in bytes: every rank-chunk is split into
    /// `ceil(len / chunk_bytes)` logical messages. `usize::MAX` (or any
    /// value ≥ the chunk size) keeps whole chunks as single messages.
    pub chunk_bytes: usize,
    /// Largest payload, in bytes, allowed to travel as one coalesced
    /// envelope. A transfer whose total exceeds this falls back to one
    /// envelope per sub-chunk; `0` disables coalescing entirely and
    /// `usize::MAX` coalesces everything.
    pub max_envelope: usize,
}

impl CoalescePolicy {
    /// Coalesce whole chunks and merged tails without limit — the fewest
    /// possible envelopes (36 for `P = 8`, 65 for `P = 10`).
    pub const fn unlimited() -> Self {
        CoalescePolicy { chunk_bytes: usize::MAX, max_envelope: usize::MAX }
    }

    /// One envelope per `chunk_bytes` sub-chunk, no coalescing — the
    /// baseline a segmented per-chunk transport would produce.
    pub const fn per_chunk(chunk_bytes: usize) -> Self {
        CoalescePolicy { chunk_bytes, max_envelope: 0 }
    }

    /// Sub-chunk pipelining at `chunk_bytes` with coalescing capped at
    /// `max_envelope` bytes per wire envelope.
    pub const fn new(chunk_bytes: usize, max_envelope: usize) -> Self {
        CoalescePolicy { chunk_bytes, max_envelope }
    }

    fn unit(&self) -> usize {
        if self.chunk_bytes == 0 {
            usize::MAX
        } else {
            self.chunk_bytes
        }
    }
}

/// Append the sub-chunk spans of one byte range, in address order.
fn push_sub_spans(spans: &mut Vec<IoSpan>, range: std::ops::Range<usize>, unit: usize) {
    let mut start = range.start;
    while start < range.end {
        let len = unit.min(range.end - start);
        spans.push(IoSpan::new(start, len));
        start += len;
    }
}

/// The envelopes of one chunk transfer: one envelope carrying all sub-chunk
/// spans when the chunk fits `max_envelope`, else one per sub-chunk. A
/// zero-byte chunk is one empty envelope, mirroring the plain ring's empty
/// message.
fn chunk_units(layout: &ChunkLayout, chunk: usize, policy: &CoalescePolicy) -> Vec<Vec<IoSpan>> {
    let range = layout.range(chunk);
    let total = range.len();
    let mut spans = Vec::new();
    push_sub_spans(&mut spans, range, policy.unit());
    if spans.len() <= 1 || total <= policy.max_envelope {
        vec![spans]
    } else {
        spans.into_iter().map(|s| vec![s]).collect()
    }
}

/// The merged degraded-tail envelope of a [`Endpoint::SendOnly`] sender, if
/// the policy admits it: `Some((first_degraded_step, spans))` with one span
/// per sub-chunk of every tail chunk, listed in step order (which wraps
/// through chunk 0 for large subtrees — the genuinely non-contiguous case).
fn tail_merge(
    layout: &ChunkLayout,
    rel: Rank,
    size: usize,
    step: usize,
    flag: Endpoint,
    policy: &CoalescePolicy,
) -> Option<(usize, Vec<IoSpan>)> {
    if flag != Endpoint::SendOnly {
        return None;
    }
    let first = size - step + 1; // first step with `step > size − i`
    if first >= size {
        return None; // no degraded step (step ≤ 1 never happens, but be safe)
    }
    let mut spans = Vec::new();
    let mut total = 0usize;
    for i in first..size {
        let (send_chunk, _) = ring_step_chunks(rel, size, i);
        let range = layout.range(send_chunk);
        total += range.len();
        push_sub_spans(&mut spans, range, policy.unit());
    }
    (total <= policy.max_envelope).then_some((first, spans))
}

/// Receive one envelope's spans from `src`.
async fn recv_unit<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    unit: &[IoSpan],
    src: Rank,
) -> Result<()> {
    comm.recv_scattered(buf, unit, src, Tag::ALLGATHER).await?;
    Ok(())
}

/// Run the tuned ring allgather with chunk coalescing over a buffer that has
/// been binomial-scattered from `root`.
///
/// Moves exactly the bytes and logical messages of
/// [`crate::ring_tuned::ring_allgather_tuned`] (when `chunk_bytes` spans
/// whole chunks) in at most as many wire envelopes; the fused-exchange
/// fallback paths assume an eager-ish transport for their unpaired sends,
/// like the fault decorator (rendezvous-everywhere models should keep
/// `max_envelope` at 0 or `usize::MAX` so every step stays fully paired).
pub fn ring_allgather_tuned_coalesced(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
    policy: &CoalescePolicy,
) -> Result<()> {
    complete_now(ring_allgather_tuned_coalesced_async(&SyncComm::new(comm), buf, root, policy))
}

/// Async core of [`ring_allgather_tuned_coalesced`]: the identical
/// envelope-planning walk over any [`AsyncCommunicator`] — run natively by
/// the event executor, driven through [`SyncComm`] by the blocking backends.
pub async fn ring_allgather_tuned_coalesced_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
    policy: &CoalescePolicy,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    let rank = comm.rank();
    let layout = ChunkLayout::new(buf.len(), size);
    let left = ring_left(rank, size);
    let right = ring_right(rank, size);
    let rel = relative_rank(rank, root, size);
    let (step, flag) = step_flag(rel, size);
    // The structure of the inbound edge is the *left neighbour's* outbound
    // structure; recompute its plan so both ends agree without any handshake.
    let rel_in = (rel + size - 1) % size;
    let (step_in, flag_in) = step_flag(rel_in, size);
    let out_tail = tail_merge(&layout, rel, size, step, flag, policy);
    let in_tail = tail_merge(&layout, rel_in, size, step_in, flag_in, policy);

    for i in 1..size {
        let (send_chunk, recv_chunk) = ring_step_chunks(rel, size, i);

        // Outbound envelopes this step (to `right`), from MY (step, flag).
        let out_units: Option<Vec<Vec<IoSpan>>> = if step <= size - i {
            Some(chunk_units(&layout, send_chunk, policy))
        } else if flag == Endpoint::SendOnly {
            match &out_tail {
                Some((first, spans)) => (i == *first).then(|| vec![spans.clone()]),
                None => Some(chunk_units(&layout, send_chunk, policy)),
            }
        } else {
            None
        };

        // Inbound envelopes this step (from `left`), from the SENDER's plan.
        let in_units: Option<Vec<Vec<IoSpan>>> = if step_in <= size - i {
            Some(chunk_units(&layout, recv_chunk, policy))
        } else if flag_in == Endpoint::SendOnly {
            match &in_tail {
                Some((first, spans)) => (i == *first).then(|| vec![spans.clone()]),
                None => Some(chunk_units(&layout, recv_chunk, policy)),
            }
        } else {
            None
        };

        match (out_units, in_units) {
            (Some(su), Some(ru)) => {
                let paired = su.len().min(ru.len());
                for j in 0..paired {
                    comm.sendrecv_vectored(
                        buf,
                        &su[j],
                        right,
                        Tag::ALLGATHER,
                        &ru[j],
                        left,
                        Tag::ALLGATHER,
                    )
                    .await?;
                }
                for unit in &su[paired..] {
                    comm.send_vectored(buf, unit, right, Tag::ALLGATHER).await?;
                }
                for unit in &ru[paired..] {
                    recv_unit(comm, buf, unit, left).await?;
                }
            }
            (Some(su), None) => {
                for unit in &su {
                    comm.send_vectored(buf, unit, right, Tag::ALLGATHER).await?;
                }
            }
            (None, Some(ru)) => {
                for unit in &ru {
                    recv_unit(comm, buf, unit, left).await?;
                }
            }
            (None, None) => {}
        }
    }
    Ok(())
}

/// `MPI_Bcast_opt` with a coalescing allgather phase: binomial scatter
/// followed by [`ring_allgather_tuned_coalesced`].
pub fn bcast_opt_coalesced(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
    policy: &CoalescePolicy,
) -> Result<()> {
    complete_now(bcast_opt_coalesced_async(&SyncComm::new(comm), buf, root, policy))
}

/// Async core of [`bcast_opt_coalesced`] — see
/// [`ring_allgather_tuned_coalesced_async`].
pub async fn bcast_opt_coalesced_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
    policy: &CoalescePolicy,
) -> Result<()> {
    binomial_scatter_async(comm, buf, root).await?;
    ring_allgather_tuned_coalesced_async(comm, buf, root, policy).await
}

/// Root-side [`bcast_opt_coalesced`]: the root only ever *reads* its buffer
/// in both phases, so it broadcasts straight from a shared slice.
pub fn bcast_opt_coalesced_root(
    comm: &(impl Communicator + ?Sized),
    src: &[u8],
    root: Rank,
    policy: &CoalescePolicy,
) -> Result<()> {
    complete_now(bcast_opt_coalesced_root_async(&SyncComm::new(comm), src, root, policy))
}

/// Async core of [`bcast_opt_coalesced_root`] — see
/// [`ring_allgather_tuned_coalesced_async`].
pub async fn bcast_opt_coalesced_root_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    src: &[u8],
    root: Rank,
    policy: &CoalescePolicy,
) -> Result<()> {
    binomial_scatter_root_async(comm, src, root).await?;
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    let layout = ChunkLayout::new(src.len(), size);
    // The root is rel 0 → (size, SendOnly): it degrades immediately and
    // every outbound chunk is already in `src`.
    match tail_merge(&layout, 0, size, size, Endpoint::SendOnly, policy) {
        Some((_, spans)) => {
            comm.send_vectored(src, &spans, ring_right(root, size), Tag::ALLGATHER).await
        }
        None => {
            for i in 1..size {
                let (send_chunk, _) = ring_step_chunks(0, size, i);
                for unit in chunk_units(&layout, send_chunk, policy) {
                    comm.send_vectored(src, &unit, ring_right(root, size), Tag::ALLGATHER).await?;
                }
            }
            Ok(())
        }
    }
}

/// Closed-form envelope count of the coalescing ring under
/// [`CoalescePolicy::unlimited`]: the tuned ring's transfer count minus the
/// lone sends each SendOnly rank's merged tail saves.
///
/// `44 → 36` for `P = 8`, `75 → 65` for `P = 10`; validated against executed
/// runs in this module's tests and used by the `schedcheck` reconciliation.
pub fn coalesced_envelope_count(size: usize) -> u64 {
    if size <= 1 {
        return 0;
    }
    let tuned: u64 = crate::traffic::tuned_ring_msgs(size);
    let mut saved = 0u64;
    for rel in 0..size {
        let (step, flag) = step_flag(rel, size);
        if flag == Endpoint::SendOnly {
            let tail = (step - 1) as u64; // lone sends at steps size−step+1 ..= size−1
            saved += tail.saturating_sub(1); // merged into one envelope
        }
    }
    tuned - saved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring_tuned::ring_allgather_tuned;
    use crate::scatter::binomial_scatter;
    use mpsim::{ThreadWorld, WorldTraffic};

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 97 + 13) as u8).collect()
    }

    fn run(size: usize, nbytes: usize, root: Rank, policy: CoalescePolicy) -> WorldTraffic {
        let src = pattern(nbytes);
        let out = ThreadWorld::run(size, |comm| {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            bcast_opt_coalesced(comm, &mut buf, root, &policy).unwrap();
            assert_eq!(buf, src, "rank {} incomplete", comm.rank());
        });
        out.traffic
    }

    fn run_plain(size: usize, nbytes: usize, root: Rank) -> WorldTraffic {
        let src = pattern(nbytes);
        let out = ThreadWorld::run(size, |comm| {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            binomial_scatter(comm, &mut buf, root).unwrap();
            ring_allgather_tuned(comm, &mut buf, root).unwrap();
        });
        out.traffic
    }

    #[test]
    fn broadcasts_correctly_many_shapes_and_policies() {
        let policies = [
            CoalescePolicy::unlimited(),
            CoalescePolicy::per_chunk(usize::MAX),
            CoalescePolicy::per_chunk(4),
            CoalescePolicy::new(4, 16),
            CoalescePolicy::new(3, 7),
            CoalescePolicy::new(1, 2),
            CoalescePolicy { chunk_bytes: 0, max_envelope: 0 },
        ];
        for &(size, nbytes, root) in &[
            (8usize, 64usize, 0usize),
            (8, 61, 3),
            (10, 100, 0),
            (10, 97, 7),
            (9, 50, 4),
            (16, 257, 9),
            (3, 2, 1),
            (2, 10, 1),
            (12, 7, 0),
            (6, 0, 5),
            (1, 9, 0),
        ] {
            for policy in policies {
                run(size, nbytes, root, policy);
            }
        }
    }

    #[test]
    fn paper_envelope_counts_whole_chunks() {
        // With whole-chunk messages the logical message counts stay the
        // paper's 44 (+7 scatter) and 75 (+9), while the merged SendOnly
        // tails shrink the wire envelopes to 36 and 65.
        let t8 = run(8, 80, 0, CoalescePolicy::unlimited());
        assert_eq!(t8.total_msgs(), 44 + 7);
        assert_eq!(t8.total_envelopes(), 36 + 7);
        let t10 = run(10, 100, 0, CoalescePolicy::unlimited());
        assert_eq!(t10.total_msgs(), 75 + 9);
        assert_eq!(t10.total_envelopes(), 65 + 9);
        assert_eq!(coalesced_envelope_count(8), 36);
        assert_eq!(coalesced_envelope_count(10), 65);
    }

    #[test]
    fn per_chunk_baseline_matches_plain_tuned_ring() {
        for &(size, nbytes, root) in &[(8usize, 80usize, 0usize), (10, 100, 3), (9, 55, 1)] {
            let base = run(size, nbytes, root, CoalescePolicy::per_chunk(usize::MAX));
            let plain = run_plain(size, nbytes, root);
            assert_eq!(base.total_msgs(), plain.total_msgs());
            assert_eq!(base.total_envelopes(), plain.total_msgs());
            assert_eq!(base.total_bytes(), plain.total_bytes());
        }
    }

    #[test]
    fn coalescing_preserves_bytes_and_messages() {
        // Sub-chunked: 8 ranks × 32-byte chunks, 4-byte sub-chunks → 8
        // logical messages per transfer. Coalescing drops envelopes ~10×
        // while bytes and logical messages are untouched.
        let per_chunk = run(8, 256, 0, CoalescePolicy::per_chunk(4));
        let coalesced = run(8, 256, 0, CoalescePolicy::new(4, usize::MAX));
        assert_eq!(per_chunk.total_bytes(), coalesced.total_bytes());
        assert_eq!(per_chunk.total_msgs(), coalesced.total_msgs());
        assert_eq!(per_chunk.total_msgs(), 44 * 8 + 7);
        assert_eq!(per_chunk.total_envelopes(), 44 * 8 + 7);
        assert_eq!(coalesced.total_envelopes(), 36 + 7);
        assert!(per_chunk.is_balanced() && coalesced.is_balanced());
    }

    #[test]
    fn threshold_falls_back_per_sub_chunk() {
        // 8 ranks × 32-byte chunks, 8-byte sub-chunks. max_envelope = 16
        // rejects both whole chunks (32) and merged tails, so every
        // envelope carries exactly one sub-chunk.
        let t = run(8, 256, 0, CoalescePolicy::new(8, 16));
        assert_eq!(t.total_msgs(), 44 * 4 + 7);
        assert_eq!(t.total_envelopes(), 44 * 4 + 7);
        // Raising the cap to one chunk (32) coalesces steps but not tails
        // larger than one chunk.
        let t = run(8, 256, 0, CoalescePolicy::new(8, 32));
        assert_eq!(t.total_msgs(), 44 * 4 + 7);
        // tails of >1 chunk (rel 0: 7 chunks, rel 4: 3) stay per-step but
        // each step's chunk still coalesces its 4 sub-chunks.
        assert_eq!(t.total_envelopes(), 44 + 7);
    }

    #[test]
    fn root_only_variant_matches_and_never_writes() {
        let (size, nbytes, root) = (10usize, 100usize, 4usize);
        let src = pattern(nbytes);
        let policy = CoalescePolicy::unlimited();
        let out = ThreadWorld::run(size, |comm| {
            if comm.rank() == root {
                bcast_opt_coalesced_root(comm, &src, root, &policy).unwrap();
                src.clone()
            } else {
                let mut buf = vec![0u8; nbytes];
                bcast_opt_coalesced(comm, &mut buf, root, &policy).unwrap();
                buf
            }
        });
        assert!(out.results.iter().all(|b| b == &src));
        assert_eq!(out.traffic.total_msgs(), 75 + 9);
        assert_eq!(out.traffic.total_envelopes(), 65 + 9);
    }

    #[test]
    fn envelope_closed_form_matches_execution() {
        for size in 2..20 {
            let t = run(size, size * 8, 0, CoalescePolicy::unlimited());
            let scatter = (size - 1) as u64;
            assert_eq!(
                t.total_envelopes(),
                coalesced_envelope_count(size) + scatter,
                "size={size}"
            );
        }
    }
}
