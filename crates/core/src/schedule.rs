//! Symbolic communication-schedule IR.
//!
//! Every collective in this crate can *emit* the exact sequence of sends and
//! receives it would perform — per rank, in program order, with peer, tag and
//! byte ranges — without moving a single byte. The emitters mirror the
//! executed code line by line (same guards, same skip conditions, same chunk
//! arithmetic), so the IR is a faithful twin of the runtime behaviour and can
//! be checked statically by the `schedcheck` crate:
//!
//! * send/recv matching (no orphaned or duplicated operations),
//! * deadlock freedom under eager and rendezvous semantics,
//! * buffer coverage (every required byte written, redundancy counted —
//!   the paper's bandwidth saving *is* the redundancy of the native ring),
//! * traffic reconciliation against [`crate::traffic`] closed forms and
//!   against instrumented `ThreadWorld`/`netsim` runs.
//!
//! ## Shape
//!
//! A [`Schedule`] holds one [`RankSchedule`] per rank. A rank's schedule is a
//! list of [`SchedOp`]s executed in order; each op carries an optional
//! [`SendHalf`] and an optional [`RecvHalf`] — both present models a
//! `sendrecv` (the two halves are posted concurrently, which is what makes
//! the ring deadlock-free under rendezvous). Byte locations are [`Loc`]s:
//! either a tracked range of the rank's destination buffer, or `Private`
//! untracked storage (send-only source buffers, reduction accumulators,
//! Bruck staging space that is overwritten between rounds).

use std::ops::Range;

use mpsim::{Rank, Tag};

/// Where the bytes of a transfer live on a rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Loc {
    /// A range of the rank's tracked destination buffer. For a send, these
    /// bytes must be valid when the send is posted; for a receive, the
    /// matched message is written at `range.start` and must fit in
    /// `range.len()` (the capacity).
    Buf(Range<usize>),
    /// `len` bytes of private, untracked storage (source buffers,
    /// accumulators, staging space). Match-only: no coverage bookkeeping.
    Private(usize),
}

impl Loc {
    /// Payload length for a send; capacity for a receive.
    pub fn len(&self) -> usize {
        match self {
            Loc::Buf(r) => r.len(),
            Loc::Private(n) => *n,
        }
    }

    /// Whether the location spans zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The send half of a schedule op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendHalf {
    /// Destination rank.
    pub peer: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload source (length = bytes on the wire).
    pub loc: Loc,
    /// `true` for a nonblocking send (`isend`): posting it never blocks the
    /// rank, even under rendezvous semantics.
    pub nonblocking: bool,
}

/// The receive half of a schedule op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvHalf {
    /// Source rank.
    pub peer: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Destination location. `Buf(range)` receives at `range.start` with
    /// capacity `range.len()`; the *actual* written extent is the matched
    /// message's length (MPI allows shorter-than-capacity messages).
    pub dst: Loc,
}

/// One program-order slot of a rank's schedule.
///
/// `send` and `recv` both present models `sendrecv`: the two halves are
/// posted concurrently and the op completes when both have completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedOp {
    /// Human-readable phase label (`"scatter"`, `"ring"`, …) for diagnostics.
    pub phase: &'static str,
    /// Optional send half.
    pub send: Option<SendHalf>,
    /// Optional receive half.
    pub recv: Option<RecvHalf>,
}

impl SchedOp {
    /// One-line description for diagnostics.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(s) = &self.send {
            let kind = if s.nonblocking { "isend" } else { "send" };
            parts.push(format!("{kind} {}B -> rank {} tag {:#x}", s.loc.len(), s.peer, s.tag.0));
        }
        if let Some(r) = &self.recv {
            parts.push(format!("recv cap {}B <- rank {} tag {:#x}", r.dst.len(), r.peer, r.tag.0));
        }
        if parts.is_empty() {
            parts.push("nop".into());
        }
        format!("[{}] {}", self.phase, parts.join(" / "))
    }
}

/// The schedule of a single rank: ops in program order plus buffer-coverage
/// metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankSchedule {
    /// Length of the tracked destination buffer (0 = nothing tracked).
    pub buf_len: usize,
    /// Byte ranges valid before the first op (initial data: the root's
    /// payload, a locally copied own block, …).
    pub valid: Vec<Range<usize>>,
    /// Byte ranges that must be valid after the last op for the collective
    /// to be correct on this rank.
    pub required: Vec<Range<usize>>,
    /// Operations in program order; the index is the rank's *step* number
    /// used in diagnostics.
    pub ops: Vec<SchedOp>,
}

impl RankSchedule {
    /// Empty schedule over a tracked buffer of `buf_len` bytes.
    pub fn new(buf_len: usize) -> Self {
        Self { buf_len, ..Self::default() }
    }

    /// Append a blocking send.
    pub fn send(&mut self, phase: &'static str, peer: Rank, tag: Tag, loc: Loc) {
        self.ops.push(SchedOp {
            phase,
            send: Some(SendHalf { peer, tag, loc, nonblocking: false }),
            recv: None,
        });
    }

    /// Append a nonblocking send (`isend`).
    pub fn isend(&mut self, phase: &'static str, peer: Rank, tag: Tag, loc: Loc) {
        self.ops.push(SchedOp {
            phase,
            send: Some(SendHalf { peer, tag, loc, nonblocking: true }),
            recv: None,
        });
    }

    /// Append a blocking receive.
    pub fn recv(&mut self, phase: &'static str, peer: Rank, tag: Tag, dst: Loc) {
        self.ops.push(SchedOp { phase, send: None, recv: Some(RecvHalf { peer, tag, dst }) });
    }

    /// Append a combined `sendrecv` (both halves posted concurrently).
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        phase: &'static str,
        to: Rank,
        stag: Tag,
        sloc: Loc,
        from: Rank,
        rtag: Tag,
        rdst: Loc,
    ) {
        self.ops.push(SchedOp {
            phase,
            send: Some(SendHalf { peer: to, tag: stag, loc: sloc, nonblocking: false }),
            recv: Some(RecvHalf { peer: from, tag: rtag, dst: rdst }),
        });
    }

    /// Mark `range` valid before the run (initial payload / local copy).
    pub fn mark_valid(&mut self, range: Range<usize>) {
        if !range.is_empty() {
            self.valid.push(range);
        }
    }

    /// Require `range` to be valid after the run.
    pub fn require(&mut self, range: Range<usize>) {
        if !range.is_empty() {
            self.required.push(range);
        }
    }

    /// Planned outgoing traffic of this rank: `(messages, bytes)`, counting
    /// every send half once at the sender (the convention of
    /// [`mpsim::TrafficStats`] and [`crate::traffic`]).
    pub fn planned_sends(&self) -> (u64, u64) {
        let mut msgs = 0u64;
        let mut bytes = 0u64;
        for op in &self.ops {
            if let Some(s) = &op.send {
                msgs += 1;
                bytes += s.loc.len() as u64;
            }
        }
        (msgs, bytes)
    }

    /// Planned incoming message count of this rank (capacities are upper
    /// bounds, so received *bytes* are only known after matching).
    pub fn planned_recvs(&self) -> u64 {
        self.ops.iter().filter(|op| op.recv.is_some()).count() as u64
    }
}

/// A full symbolic schedule: one [`RankSchedule`] per rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Algorithm name (diagnostics and CLI listings).
    pub name: String,
    /// World size.
    pub p: usize,
    /// Per-rank schedules, indexed by rank.
    pub ranks: Vec<RankSchedule>,
}

impl Schedule {
    /// New empty schedule of `p` ranks, each tracking a `buf_len`-byte buffer.
    pub fn new(name: impl Into<String>, p: usize, buf_len: usize) -> Self {
        Self { name: name.into(), p, ranks: (0..p).map(|_| RankSchedule::new(buf_len)).collect() }
    }

    /// Splice a sub-communicator schedule into this one: local rank `i` of
    /// `sub` becomes parent rank `members[i]`, and every peer reference is
    /// translated the same way. Only ops are spliced; validity/requirement
    /// metadata stays the caller's responsibility (phases of a composite
    /// share one buffer).
    pub fn splice(&mut self, sub: &Schedule, members: &[Rank]) {
        assert_eq!(sub.p, members.len(), "member list must cover the sub-world");
        for (local, rs) in sub.ranks.iter().enumerate() {
            let parent = members[local];
            for op in &rs.ops {
                let mut op = op.clone();
                if let Some(s) = &mut op.send {
                    s.peer = members[s.peer];
                }
                if let Some(r) = &mut op.recv {
                    r.peer = members[r.peer];
                }
                self.ranks[parent].ops.push(op);
            }
        }
    }

    /// Planned total traffic `(messages, bytes)` summed over all send halves.
    pub fn planned_volume(&self) -> (u64, u64) {
        let mut msgs = 0u64;
        let mut bytes = 0u64;
        for rs in &self.ranks {
            let (m, b) = rs.planned_sends();
            msgs += m;
            bytes += b;
        }
        (msgs, bytes)
    }

    /// Total op count across ranks (sweep statistics).
    pub fn total_ops(&self) -> usize {
        self.ranks.iter().map(|r| r.ops.len()).sum()
    }
}

/// A named family of schedules: one collective algorithm, parameterized by
/// world size, payload size and root.
///
/// `nbytes` is the *total tracked buffer* for rooted broadcast-family
/// collectives and the *per-rank block* for symmetric collectives
/// (allgather/alltoall/reduce); each implementation documents its reading.
/// Sources ignore `root` when the collective has none.
pub trait ScheduleSource {
    /// Stable algorithm name, `family/variant` (e.g. `"bcast/scatter_ring_tuned"`).
    fn name(&self) -> &'static str;

    /// Whether the algorithm is defined for a world of `p` ranks
    /// (e.g. recursive doubling requires a power of two).
    fn supports(&self, p: usize) -> bool;

    /// Emit the full symbolic schedule.
    fn schedule(&self, p: usize, nbytes: usize, root: Rank) -> Schedule;
}

/// All schedule sources in the crate — the sweep surface of the `schedcheck`
/// CLI. Every collective family is represented.
pub fn all_sources() -> Vec<Box<dyn ScheduleSource>> {
    let mut v: Vec<Box<dyn ScheduleSource>> = Vec::new();
    v.extend(crate::bcast::schedule_sources());
    v.extend(crate::pipeline::schedule_sources());
    v.extend(crate::smp::schedule_sources());
    v.extend(crate::allgather::schedule_sources());
    v.extend(crate::alltoall::schedule_sources());
    v.extend(crate::scatter_gather::schedule_sources());
    v.extend(crate::reduce::schedule_sources());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_volume() {
        let mut s = Schedule::new("toy", 2, 8);
        s.ranks[0].mark_valid(0..8);
        s.ranks[0].send("x", 1, Tag(1), Loc::Buf(0..8));
        s.ranks[1].recv("x", 0, Tag(1), Loc::Buf(0..8));
        s.ranks[1].require(0..8);
        assert_eq!(s.planned_volume(), (1, 8));
        assert_eq!(s.ranks[0].planned_sends(), (1, 8));
        assert_eq!(s.ranks[1].planned_recvs(), 1);
        assert_eq!(s.total_ops(), 2);
    }

    #[test]
    fn splice_translates_peers() {
        let mut sub = Schedule::new("sub", 2, 4);
        sub.ranks[0].send("x", 1, Tag(9), Loc::Private(4));
        sub.ranks[1].recv("x", 0, Tag(9), Loc::Private(4));
        let mut top = Schedule::new("top", 6, 4);
        top.splice(&sub, &[2, 5]);
        let s = top.ranks[2].ops[0].send.as_ref().unwrap();
        assert_eq!(s.peer, 5);
        let r = top.ranks[5].ops[0].recv.as_ref().unwrap();
        assert_eq!(r.peer, 2);
        assert!(top.ranks[0].ops.is_empty());
    }

    #[test]
    fn describe_is_informative() {
        let op = SchedOp {
            phase: "ring",
            send: Some(SendHalf {
                peer: 3,
                tag: Tag(0xB1),
                loc: Loc::Buf(0..5),
                nonblocking: false,
            }),
            recv: Some(RecvHalf { peer: 1, tag: Tag(0xB1), dst: Loc::Buf(5..10) }),
        };
        let d = op.describe();
        assert!(d.contains("ring") && d.contains("rank 3") && d.contains("rank 1"), "{d}");
    }

    #[test]
    fn all_sources_cover_every_family() {
        let names: Vec<&str> = all_sources().iter().map(|s| s.name()).collect();
        for family in ["bcast/", "allgather/", "alltoall/", "scatter/", "gather/", "reduce"] {
            assert!(names.iter().any(|n| n.starts_with(family)), "missing {family}: {names:?}");
        }
    }
}
