//! Self-healing broadcast: timeout-guarded execution, failure agreement,
//! and degraded-ring recovery on the surviving ranks.
//!
//! The tuned scatter–ring broadcast, like every static-schedule collective,
//! hangs if a participant dies mid-ring: its neighbors wait forever on a
//! `sendrecv` that can never match. This module turns that hang into
//! detection and recovery:
//!
//! 1. **Guarded attempt** — the broadcast runs over a [`GuardedComm`], which
//!    bounds every receive with a deadline, and an [`EpochComm`], which
//!    shifts all tags by the attempt number so retries can never match stale
//!    messages from a failed attempt. A dead neighbor surfaces as
//!    [`CommError::Timeout`] or — when the backend's exited-rank detector
//!    fires first — [`CommError::PeerFailed`].
//! 2. **Agreement round** — every surviving rank sends a one-byte report
//!    (a "payload complete" bit) to every other current member, then
//!    collects the peers' reports under a generous heartbeat deadline.
//!    Membership is decided by this exchange *alone*: an attempt-time
//!    timeout is only a stall symptom (a live neighbor of a dead rank
//!    stalls too), but a rank that misses the heartbeat deadline — sized to
//!    cover the worst-case attempt cascade — is dead under the fail-stop
//!    assumption (below), so every live rank computes the same verdict.
//! 3. **Degraded rerun** — the survivors form a [`SubComm`], the
//!    binomial-scatter `(step, flag)` schedule is re-derived over the
//!    shrunken world (simply by running the same algorithm at the smaller
//!    size), and the broadcast reruns from the lowest-ranked survivor that
//!    holds the full payload. The loop repeats until an attempt completes
//!    on every survivor or the epoch budget is exhausted.
//!
//! The matching *symbolic* schedule of a degraded rerun is available from
//! [`degraded_bcast_schedule`], so `schedcheck` verifies the regenerated
//! ring exactly like the full-world one.
//!
//! ## Fault model
//!
//! Recovery assumes **fail-stop** processes and a **reliable timeout
//! oracle**: a rank that fails stays silent forever (no Byzantine
//! behavior), and the heartbeat deadline is long enough that a live rank is
//! never mistaken for dead. A false suspicion does not corrupt data — the
//! falsely-excluded rank returns [`CommError::PeerFailed`] naming itself
//! and the survivors still complete — but it does shrink the world more
//! than necessary. Message *loss* between live ranks is the job of
//! [`mpsim::ReliableComm`], stacked underneath; this module only handles
//! silence.
//!
//! Like everything timeout-based, [`GuardedComm`] decomposes `sendrecv`
//! into an eager send followed by a bounded receive, so the transport must
//! deliver eagerly (the threaded backend always does; simulated worlds
//! need a model with a high `eager_threshold`).

use std::collections::BTreeSet;
use std::time::Duration;

use mpsim::{CommError, Communicator, Rank, Result, SubComm, Tag};

use crate::bcast::{bcast_with, Algorithm};
use crate::schedule::Schedule;

/// Tag offset between broadcast attempts: epoch `e` runs its collective on
/// `Tag(t + e · EPOCH_TAG_STRIDE)`, so a retry can never match a stale
/// message from an earlier, partially-failed attempt.
pub const EPOCH_TAG_STRIDE: u32 = 0x100;

/// Base tag of the per-epoch agreement (heartbeat/report) round.
pub const AGREEMENT_TAG_BASE: u32 = 0xA100;

/// Shift granularity of the membership digest inside an attempt's tag: the
/// digest occupies bits 12 and up, above every user tag (< `0x100`), every
/// epoch shift (`epoch · 0x100`), and the whole agreement range
/// (`0xA100..≈0xB100`), and below [`mpsim::reliable::DATA_TAG_BASE`] so the
/// reliability layer's rebasing can never push an attempt tag into its
/// reserved acknowledgement range.
pub const MEMBERSHIP_DIGEST_SHIFT: u32 = 12;

/// Digest of a member list, folded into every *attempt* tag (never the
/// agreement tag) by [`EpochComm::isolated`].
///
/// A crash that lands *during* an agreement round can split the verdict:
/// peers the victim already answered believe it alive, later peers see it
/// dead, and the two groups enter the next epoch with member lists that
/// differ by the victim — and therefore with different degraded schedules.
/// Without isolation the groups' same-epoch messages cross-match with
/// mismatched chunk geometry and corrupt payloads. With the digest in the
/// tag, a rank only ever matches attempt traffic from peers that agree on
/// the membership, so a split epoch stalls cleanly into timeouts and the
/// *next* agreement round re-converges (the victim is silent for everyone
/// by then). Agreement tags stay digest-free on purpose — the diverged
/// groups must still heartbeat each other to re-converge.
pub fn membership_digest(members: &[Rank]) -> u32 {
    // FNV-1a over the member ranks, folded to a 12-bit page well clear of
    // the low pages (user + epoch + agreement tags all sit below 0xB2xx).
    let mut h: u32 = 0x811C_9DC5;
    for &m in members {
        for b in (m as u32).to_le_bytes() {
            h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
        }
    }
    0x10 + (h % 0xFE0)
}

/// Tuning knobs for [`self_healing_bcast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Deadline for each receive inside a broadcast attempt — the failure
    /// detector's resolution. Too short and slow ranks are suspected; too
    /// long and recovery is sluggish.
    pub step_timeout: Duration,
    /// Maximum number of attempts (first try included) before giving up.
    pub max_epochs: u32,
    /// Set when the communicator's own `sendrecv` already returns
    /// [`CommError::Timeout`] on its own (e.g. [`mpsim::ReliableComm`],
    /// whose ack pump has a bounded attempt budget). [`GuardedComm`] then
    /// delegates `sendrecv` instead of decomposing it — decomposition
    /// would wedge the reliability layer's pump, because a blocking
    /// acknowledged send cannot drain incoming data frames.
    pub bounded_sendrecv: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            step_timeout: Duration::from_millis(250),
            max_epochs: 4,
            bounded_sendrecv: false,
        }
    }
}

impl RecoveryConfig {
    /// The agreement-round deadline. A live member may still be stuck in
    /// the failed attempt when its peers start collecting heartbeats: with
    /// every receive bounded by one step-timeout, a stalled attempt drains
    /// in at most `scatter depth + ring steps` timeouts (< 2·members), so
    /// twice that plus slack guarantees a live rank is never mistaken for
    /// dead.
    pub(crate) fn heartbeat_timeout(&self, members: usize) -> Duration {
        self.step_timeout.saturating_mul(2 * members as u32 + 6)
    }
}

/// What a successful [`self_healing_bcast`] reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Healed {
    /// The ranks (world numbering) on which the broadcast completed.
    pub survivors: Vec<Rank>,
    /// Number of attempts performed; `1` means no fault was observed.
    pub epochs: u32,
}

/// Tag-shifting decorator: runs an unmodified collective in a private tag
/// epoch so concurrent or stale traffic on other epochs cannot interfere.
pub struct EpochComm<'a, C: ?Sized> {
    pub(crate) inner: &'a C,
    shift: u32,
}

impl<'a, C: ?Sized> EpochComm<'a, C> {
    /// Wrap `inner`, shifting every tag by `epoch · EPOCH_TAG_STRIDE`.
    pub fn new(inner: &'a C, epoch: u32) -> Self {
        EpochComm { inner, shift: epoch.wrapping_mul(EPOCH_TAG_STRIDE) }
    }

    /// Wrap `inner`, shifting every tag by the epoch *and* a membership
    /// digest, so attempts over diverged member lists can never exchange
    /// data (see [`membership_digest`]).
    pub fn isolated(inner: &'a C, epoch: u32, digest: u32) -> Self {
        EpochComm {
            inner,
            shift: epoch
                .wrapping_mul(EPOCH_TAG_STRIDE)
                .wrapping_add(digest << MEMBERSHIP_DIGEST_SHIFT),
        }
    }

    pub(crate) fn shifted(&self, tag: Tag) -> Tag {
        Tag(tag.0.wrapping_add(self.shift))
    }
}

impl<C: Communicator + ?Sized> Communicator for EpochComm<'_, C> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.inner.send(buf, dest, self.shifted(tag))
    }

    fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.inner.recv(buf, src, self.shifted(tag))
    }

    fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<usize> {
        self.inner.recv_timeout(buf, src, self.shifted(tag), timeout)
    }

    fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.inner.sendrecv(
            sendbuf,
            dest,
            self.shifted(sendtag),
            recvbuf,
            src,
            self.shifted(recvtag),
        )
    }

    fn barrier(&self) -> Result<()> {
        self.inner.barrier()
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn check_rank(&self, rank: Rank) -> Result<()> {
        self.inner.check_rank(rank)
    }
}

/// Deadline-guarding decorator: every blocking receive becomes a
/// [`Communicator::recv_timeout`] with a fixed step deadline, so a silent
/// peer surfaces as [`CommError::Timeout`] instead of a hang.
///
/// `sendrecv` is decomposed into an eager send followed by a bounded
/// receive — correct only on eagerly-delivering transports (see the
/// [module docs](self)).
pub struct GuardedComm<'a, C: ?Sized> {
    pub(crate) inner: &'a C,
    pub(crate) step_timeout: Duration,
    pub(crate) passthrough_sendrecv: bool,
}

impl<'a, C: ?Sized> GuardedComm<'a, C> {
    /// Wrap `inner` with a per-receive deadline of `step_timeout`.
    pub fn new(inner: &'a C, step_timeout: Duration) -> Self {
        GuardedComm { inner, step_timeout, passthrough_sendrecv: false }
    }

    /// Delegate `sendrecv` to the inner communicator instead of
    /// decomposing it. Only sound when the inner `sendrecv` cannot block
    /// forever on a dead peer — see
    /// [`RecoveryConfig::bounded_sendrecv`].
    pub fn passthrough_sendrecv(mut self) -> Self {
        self.passthrough_sendrecv = true;
        self
    }
}

impl<C: Communicator + ?Sized> Communicator for GuardedComm<'_, C> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.inner.send(buf, dest, tag)
    }

    fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.inner.recv_timeout(buf, src, tag, self.step_timeout)
    }

    fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<usize> {
        self.inner.recv_timeout(buf, src, tag, timeout.min(self.step_timeout))
    }

    fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        if self.passthrough_sendrecv {
            return self.inner.sendrecv(sendbuf, dest, sendtag, recvbuf, src, recvtag);
        }
        self.inner.send(sendbuf, dest, sendtag)?;
        self.inner.recv_timeout(recvbuf, src, recvtag, self.step_timeout)
    }

    fn barrier(&self) -> Result<()> {
        self.inner.barrier()
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn check_rank(&self, rank: Rank) -> Result<()> {
        self.inner.check_rank(rank)
    }
}

/// One rank's state after an attempt, exchanged in the agreement round.
pub(crate) struct Report {
    pub(crate) has_full: bool,
}

impl Report {
    pub(crate) fn encode(&self) -> [u8; 1] {
        [u8::from(self.has_full)]
    }

    pub(crate) fn decode(bytes: &[u8]) -> Option<Report> {
        match bytes {
            [b @ (0 | 1)] => Some(Report { has_full: *b == 1 }),
            _ => None,
        }
    }
}

/// Outcome of one agreement round, identical on every live member (unless a
/// crash lands mid-round — see [`membership_digest`] for how that split is
/// contained).
pub(crate) struct Verdict {
    pub(crate) dead: BTreeSet<Rank>,
    pub(crate) have_full: BTreeSet<Rank>,
}

/// Recovery branch bits, recorded in [`RecoveryTrace::branches`]. The set of
/// bits a run lights up is part of the chaos-search coverage signal: a fault
/// plan that reaches a new combination is interesting by definition.
pub mod branch {
    /// An attempt completed cleanly on this rank.
    pub const CLEAN_ATTEMPT: u32 = 1 << 0;
    /// An attempt stalled (timeout / peer failure) on this rank.
    pub const STALLED_ATTEMPT: u32 = 1 << 1;
    /// Healed with nobody newly dead and every member holding the payload.
    pub const HEALED_ALL: u32 = 1 << 2;
    /// Healed because every *remaining* member already held the payload.
    pub const HEALED_SURVIVORS: u32 = 1 << 3;
    /// An agreement round declared at least one member dead.
    pub const DEATH_OBSERVED: u32 = 1 << 4;
    /// The root role moved to a successor.
    pub const ROOT_SUCCESSION: u32 = 1 << 5;
    /// No surviving member held a complete payload: unrecoverable.
    pub const PAYLOAD_LOST: u32 = 1 << 6;
    /// The epoch budget ran out before the world converged.
    pub const EPOCH_BUDGET_EXHAUSTED: u32 = 1 << 7;
    /// This rank's own communicator fail-stopped.
    pub const SELF_CRASH: u32 = 1 << 8;
    /// A garbled report was treated as a peer death.
    pub const GARBLED_REPORT: u32 = 1 << 9;
}

/// What one rank's recovery run did, step by step — the coverage signal the
/// chaos search steers by, and the observability surface the megascale
/// tests assert on.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryTrace {
    /// Epochs entered (attempt + agreement pairs), including the first.
    pub epochs_entered: u32,
    /// Number of times the root role moved (`root_chain.len() - 1`).
    pub succession_depth: u32,
    /// The root chain, starting at the caller-supplied root.
    pub root_chain: Vec<Rank>,
    /// Distinct members this rank's verdicts declared dead, cumulatively.
    pub deaths_observed: usize,
    /// Union of [`branch`] bits hit.
    pub branches: u32,
}

impl RecoveryTrace {
    /// Record a [`branch`] bit.
    pub fn hit(&mut self, bit: u32) {
        self.branches |= bit;
    }

    /// Whether a [`branch`] bit was hit.
    pub fn saw(&self, bit: u32) -> bool {
        self.branches & bit != 0
    }
}

/// Deliberate-regression knobs for the chaos-search drill: each knob
/// re-introduces a recovery bug the invariant checker must catch, proving
/// the adversarial search has teeth (the moral equivalent of the schedcheck
/// models' mutation knobs). Production callers pass
/// [`RecoveryDrill::NONE`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryDrill {
    /// Report `has_full = true` regardless of attempt outcome. A rank
    /// without the payload can then win root succession and broadcast
    /// garbage — the byte-identical-payload invariant catches it.
    pub claim_full_payload: bool,
    /// Never move the root role. A dead root then stays the designated
    /// source and the degraded schedule cannot be built — recovery dies
    /// instead of healing.
    pub skip_root_succession: bool,
    /// Cap the epoch budget below the configured one, starving cascades —
    /// the liveness invariant (enough budget ⇒ every live rank heals)
    /// catches it.
    pub clamp_epoch_budget: Option<u32>,
}

impl RecoveryDrill {
    /// No deliberate regression: the production configuration.
    pub const NONE: RecoveryDrill = RecoveryDrill {
        claim_full_payload: false,
        skip_root_succession: false,
        clamp_epoch_budget: None,
    };
}

/// Exchange reports among `members` (world numbering) and fold them into a
/// common verdict: a member is dead iff it fails this exchange. The
/// fail-stop assumption plus the backends' definitive exited-rank
/// detection make the outcome identical on every live member — a dead rank
/// fails *everyone's* heartbeat, and the deadline is sized so a live rank
/// never does.
///
/// The exchange visits peers in ascending member order, which is
/// deadlock-free for pairwise exchanges: the globally smallest unfinished
/// pair is always each other's current partner (each rank only moves past
/// a peer once that pair is done), so someone always progresses. With
/// [`RecoveryConfig::bounded_sendrecv`] the roundtrip uses the reliable
/// layer's self-bounding `sendrecv` pump — an eager send followed by a
/// bounded receive would wedge an acknowledged-send layer, whose `send`
/// cannot complete until the peer actively receives.
fn agree(
    comm: &(impl Communicator + ?Sized),
    members: &[Rank],
    epoch: u32,
    mine: &Report,
    cfg: &RecoveryConfig,
) -> Result<Verdict> {
    let me = comm.rank();
    let tag = Tag(AGREEMENT_TAG_BASE.wrapping_add(epoch.wrapping_mul(EPOCH_TAG_STRIDE)));
    let encoded = mine.encode();
    let hb = cfg.heartbeat_timeout(members.len());

    let mut dead = BTreeSet::new();
    let mut have_full = BTreeSet::new();
    if mine.has_full {
        have_full.insert(me);
    }

    let mut frame = [0u8; 1];
    for &peer in members {
        if peer == me {
            continue;
        }
        let outcome = if cfg.bounded_sendrecv {
            comm.sendrecv(&encoded, peer, tag, &mut frame, peer, tag)
        } else {
            // Plain backends deliver sends eagerly, so pushing the report
            // first and then waiting (bounded) on the peer's cannot block.
            match comm.send(&encoded, peer, tag) {
                Ok(()) => comm.recv_timeout(&mut frame, peer, tag, hb),
                Err(e) => Err(e),
            }
        };
        match outcome {
            Ok(n) => match Report::decode(&frame[..n]) {
                Some(theirs) => {
                    if theirs.has_full {
                        have_full.insert(peer);
                    }
                }
                // A garbled report from a live rank violates the fault
                // model; treating the rank as failed keeps us moving.
                None => {
                    dead.insert(peer);
                }
            },
            // Our *own* communicator fail-stopping mid-round surfaces as a
            // peer failure naming this rank (world numbering — agreement
            // runs on the parent comm). Propagate it instead of wrongly
            // declaring every not-yet-visited peer dead.
            Err(CommError::PeerFailed { rank }) if rank == me => {
                return Err(CommError::PeerFailed { rank: me });
            }
            Err(CommError::Timeout { .. }) | Err(CommError::PeerFailed { .. }) => {
                dead.insert(peer);
            }
            Err(e) => return Err(e),
        }
    }
    have_full.retain(|r| !dead.contains(r));
    Ok(Verdict { dead, have_full })
}

/// Fault-tolerant broadcast of `buf` from `root` using the paper's tuned
/// scatter–ring algorithm, healing around fail-stop crashes.
///
/// On success every *surviving* rank holds the full payload and receives
/// the same [`Healed`] summary. A rank that was declared dead — including
/// one whose own communicator fail-stopped — gets
/// `Err(CommError::PeerFailed)` naming itself. If the payload becomes
/// unrecoverable (no survivor holds a complete copy) every survivor gets
/// `Err(CommError::PeerFailed)` naming the root.
pub fn self_healing_bcast(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
    cfg: &RecoveryConfig,
) -> Result<Healed> {
    self_healing_bcast_with(comm, buf, root, Algorithm::ScatterRingTuned, cfg)
}

/// [`self_healing_bcast`] with an explicit algorithm for the attempts.
pub fn self_healing_bcast_with(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
    algorithm: Algorithm,
    cfg: &RecoveryConfig,
) -> Result<Healed> {
    comm.check_rank(root)?;
    assert!(cfg.max_epochs >= 1, "at least one attempt is required");
    let me = comm.rank();
    let mut members: Vec<Rank> = (0..comm.size()).collect();
    let mut current_root = root;
    let mut has_full = me == root;

    for epoch in 0..cfg.max_epochs {
        // lint: allow(panic) — `me` is always kept in `members` (checked below)
        let sub = SubComm::new(comm, members.clone()).expect("member list lost this rank");
        let local_root =
            sub.from_parent(current_root).unwrap_or_else(|| unreachable!("root is a member"));
        let epoch_comm = EpochComm::isolated(&sub, epoch, membership_digest(&members));
        let mut guarded = GuardedComm::new(&epoch_comm, cfg.step_timeout);
        if cfg.bounded_sendrecv {
            guarded = guarded.passthrough_sendrecv();
        }

        let attempt = bcast_with(&guarded, buf, local_root, algorithm);
        match attempt {
            Ok(()) => has_full = true,
            // A timeout or peer failure only marks the attempt as failed;
            // *who* is dead is decided by the agreement round — a neighbor
            // of the actual crash stalls and times out too, and must not
            // be mistaken for the crash itself.
            Err(CommError::Timeout { peer }) | Err(CommError::PeerFailed { rank: peer }) => {
                // Errors from the sub-world stack name *local* ranks.
                if members[peer] == me {
                    // Our own communicator fail-stopped: we are the crash.
                    return Err(CommError::PeerFailed { rank: me });
                }
            }
            Err(e) => return Err(e),
        }

        let verdict = agree(comm, &members, epoch, &Report { has_full }, cfg)?;

        if verdict.dead.is_empty() && verdict.have_full.len() == members.len() {
            return Ok(Healed { survivors: members, epochs: epoch + 1 });
        }

        members.retain(|r| !verdict.dead.contains(r));
        match verdict.have_full.iter().next() {
            Some(&lowest) => {
                // The original root keeps the role while alive; otherwise
                // the lowest-ranked survivor with a full copy takes over.
                current_root =
                    if verdict.have_full.contains(&current_root) { current_root } else { lowest };
            }
            // No complete copy survived anywhere: unrecoverable.
            None => return Err(CommError::PeerFailed { rank: root }),
        }
        if members.len() == verdict.have_full.len()
            && members.iter().all(|r| verdict.have_full.contains(r))
        {
            // Everyone still standing already holds the payload.
            return Ok(Healed { survivors: members, epochs: epoch + 1 });
        }
    }
    Err(CommError::Timeout { peer: current_root })
}

/// The symbolic schedule of a degraded rerun: the chosen algorithm emitted
/// for the shrunken world of `members`, spliced back into full-world rank
/// numbering. `root` is the *world* rank of the rerun's root and must be a
/// member. `schedcheck` analyses (matching, deadlock-freedom, coverage of
/// the survivors) apply to it unchanged.
pub fn degraded_bcast_schedule(
    algorithm: Algorithm,
    p: usize,
    nbytes: usize,
    members: &[Rank],
    root: Rank,
) -> Schedule {
    assert!(!members.is_empty(), "at least one survivor is required");
    assert!(members.iter().all(|&m| m < p), "member outside the world");
    let local_root = members
        .iter()
        .position(|&m| m == root)
        .unwrap_or_else(|| panic!("root {root} is not among the survivors {members:?}"));
    let sub = crate::bcast::bcast_schedule(algorithm, members.len(), nbytes, local_root);
    let mut s = Schedule::new(format!("{}@degraded", sub.name), p, nbytes);
    s.ranks[root].mark_valid(0..nbytes);
    for &m in members {
        s.ranks[m].require(0..nbytes);
    }
    s.splice(&sub, members);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 + 11) as u8).collect()
    }

    fn quick_cfg() -> RecoveryConfig {
        RecoveryConfig { step_timeout: Duration::from_millis(100), ..RecoveryConfig::default() }
    }

    #[test]
    fn report_roundtrip() {
        assert!(Report::decode(&Report { has_full: true }.encode()).unwrap().has_full);
        assert!(!Report::decode(&Report { has_full: false }.encode()).unwrap().has_full);
        assert!(Report::decode(&[2]).is_none(), "garbled byte rejected");
        assert!(Report::decode(&[]).is_none(), "empty frame rejected");
        assert!(Report::decode(&[0, 0]).is_none(), "overlong frame rejected");
    }

    #[test]
    fn fault_free_bcast_completes_in_one_epoch() {
        let n = 777;
        let src = pattern(n);
        let out = ThreadWorld::run(8, |comm| {
            let mut buf = if comm.rank() == 2 { src.clone() } else { vec![0u8; n] };
            let healed = self_healing_bcast(comm, &mut buf, 2, &quick_cfg()).unwrap();
            assert_eq!(buf, src);
            healed
        });
        for h in &out.results {
            assert_eq!(h.epochs, 1);
            assert_eq!(h.survivors, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn survivors_heal_around_a_rank_that_exits_mid_world() {
        // Acceptance shape: P = 8, one non-root rank dies before taking part
        // in the ring; the 7 survivors must all end up with the payload.
        let n = 4096;
        let src = pattern(n);
        let out = ThreadWorld::run(8, |comm| {
            if comm.rank() == 5 {
                // fail-stop: return without ever participating
                return None;
            }
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; n] };
            let healed = self_healing_bcast(comm, &mut buf, 0, &quick_cfg()).unwrap();
            assert_eq!(buf, src);
            Some(healed)
        });
        let expected: Vec<Rank> = vec![0, 1, 2, 3, 4, 6, 7];
        for (rank, h) in out.results.iter().enumerate() {
            if rank == 5 {
                assert!(h.is_none());
            } else {
                let h = h.as_ref().unwrap();
                assert_eq!(h.survivors, expected, "rank {rank} saw a different survivor set");
                assert!(h.epochs >= 2, "a healing epoch must have run");
            }
        }
    }

    #[test]
    fn non_root_crash_with_non_default_root_recovers() {
        let n = 1000;
        let src = pattern(n);
        let out = ThreadWorld::run(8, |comm| {
            if comm.rank() == 1 {
                return None;
            }
            let mut buf = if comm.rank() == 3 { src.clone() } else { vec![0u8; n] };
            let healed = self_healing_bcast(comm, &mut buf, 3, &quick_cfg()).unwrap();
            assert_eq!(buf, src);
            Some(healed)
        });
        let expected: Vec<Rank> = vec![0, 2, 3, 4, 5, 6, 7];
        for (rank, h) in out.results.iter().enumerate() {
            if rank != 1 {
                assert_eq!(h.as_ref().unwrap().survivors, expected, "rank {rank} disagreed");
            }
        }
    }

    #[test]
    fn root_crash_is_unrecoverable_when_no_one_has_the_payload() {
        let n = 512;
        let out = ThreadWorld::run(4, |comm| {
            if comm.rank() == 0 {
                return None; // the root dies before sending anything
            }
            let mut buf = vec![0u8; n];
            self_healing_bcast(comm, &mut buf, 0, &quick_cfg()).err()
        });
        for (rank, e) in out.results.iter().enumerate() {
            if rank != 0 {
                assert_eq!(
                    *e,
                    Some(CommError::PeerFailed { rank: 0 }),
                    "rank {rank} must learn the payload is lost"
                );
            }
        }
    }

    #[test]
    fn epoch_comm_shifts_tags() {
        let out = ThreadWorld::run(2, |comm| {
            let e0 = EpochComm::new(comm, 0);
            let e1 = EpochComm::new(comm, 1);
            if comm.rank() == 0 {
                e1.send(&[1], 1, Tag(5)).unwrap();
                e0.send(&[0], 1, Tag(5)).unwrap();
                0
            } else {
                let mut buf = [0u8; 1];
                // epoch-0 recv must match the epoch-0 send, not the earlier
                // epoch-1 message on the same user tag
                e0.recv(&mut buf, 0, Tag(5)).unwrap();
                buf[0]
            }
        });
        assert_eq!(out.results[1], 0);
    }

    #[test]
    fn guarded_comm_times_out_on_silence() {
        let out = ThreadWorld::run(2, |comm| {
            let g = GuardedComm::new(comm, Duration::from_millis(30));
            if comm.rank() == 0 {
                let mut buf = [0u8; 1];
                let err = g.recv(&mut buf, 1, Tag(0)).unwrap_err();
                comm.send(&[0], 1, Tag(9)).unwrap();
                Some(err)
            } else {
                let mut buf = [0u8; 1];
                comm.recv(&mut buf, 0, Tag(9)).unwrap();
                None
            }
        });
        assert_eq!(out.results[0], Some(CommError::Timeout { peer: 1 }));
    }

    #[test]
    fn degraded_schedule_covers_survivors_only() {
        let members = [0usize, 1, 3, 4, 5, 6, 7]; // rank 2 died
        let s = degraded_bcast_schedule(Algorithm::ScatterRingTuned, 8, 800, &members, 0);
        assert_eq!(s.p, 8);
        assert!(s.ranks[2].ops.is_empty(), "dead rank must have no ops");
        assert!(s.ranks[2].required.is_empty(), "dead rank owes nothing");
        for &m in &members {
            assert_eq!(s.ranks[m].required, vec![0..800]);
            assert!(!s.ranks[m].ops.is_empty());
        }
        // all peers referenced must be survivors
        for rs in &s.ranks {
            for op in &rs.ops {
                if let Some(send) = &op.send {
                    assert!(members.contains(&send.peer));
                }
                if let Some(recv) = &op.recv {
                    assert!(members.contains(&recv.peer));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not among the survivors")]
    fn degraded_schedule_rejects_dead_root() {
        let _ = degraded_bcast_schedule(Algorithm::ScatterRingTuned, 8, 64, &[0, 1, 3], 2);
    }
}
