//! Segmented pipeline (chain) broadcast — a classic long-message alternative
//! to scatter-ring-allgather (used by e.g. Open MPI's `chain`/`pipeline`
//! components) implemented as an *extension baseline* for the ablation
//! benches. Not part of the paper's MPICH3 dispatch, but the natural "what
//! else could you do for lmsg" comparison.
//!
//! The buffer is cut into segments of `segment` bytes; ranks form a chain in
//! root-relative order and each rank forwards segment `s` (nonblocking)
//! while receiving segment `s+1` — after the `P−1`-hop fill, every link of
//! the chain streams at full bandwidth.

use mpsim::{absolute_rank, relative_rank, NonBlocking, Rank, Result, Tag};

use crate::schedule::{Loc, Schedule, ScheduleSource};

/// Pipeline broadcast of `buf` from `root` with the given `segment` size.
///
/// `segment == 0` is treated as "one segment" (plain chain). Message count is
/// `(P−1) · ceil(n / segment)`; every byte crosses every link exactly once
/// (total `(P−1) · n` bytes, the same as binomial — the win is pipelining,
/// not volume).
pub fn bcast_pipeline<C: NonBlocking>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
    segment: usize,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    if size == 1 || buf.is_empty() {
        return Ok(());
    }
    let nbytes = buf.len();
    let segment = if segment == 0 { nbytes } else { segment };
    let relative = relative_rank(comm.rank(), root, size);
    let prev = (relative > 0).then(|| absolute_rank(relative - 1, root, size));
    let next = (relative + 1 < size).then(|| absolute_rank(relative + 1, root, size));

    let mut pending: Option<C::SendPending> = None;
    let mut offset = 0usize;
    while offset < nbytes {
        let end = (offset + segment).min(nbytes);
        if let Some(p) = prev {
            comm.recv(&mut buf[offset..end], p, Tag::BCAST)?;
        }
        if let Some(n) = next {
            // Let the previous segment's forward drain before reusing the
            // handle; the transfer itself overlaps with our next receive.
            if let Some(sp) = pending.take() {
                comm.wait_send(sp)?;
            }
            pending = Some(comm.isend(&buf[offset..end], n, Tag::BCAST)?);
        }
        offset = end;
    }
    if let Some(sp) = pending {
        comm.wait_send(sp)?;
    }
    Ok(())
}

/// Analytic message count of the pipeline broadcast.
pub fn pipeline_msgs(nbytes: usize, segment: usize, p: usize) -> u64 {
    if p <= 1 || nbytes == 0 {
        return 0;
    }
    let segment = if segment == 0 { nbytes } else { segment };
    (p as u64 - 1) * (nbytes.div_ceil(segment) as u64)
}

/// Emit the symbolic schedule of [`bcast_pipeline`]. The forward of each
/// segment is a *nonblocking* send ([`Loc`] unchanged, `isend` op), mirroring
/// the executed overlap of forwarding segment `s` with receiving `s+1`.
pub fn pipeline_schedule(p: usize, nbytes: usize, root: Rank, segment: usize) -> Schedule {
    let mut s = Schedule::new("bcast/pipeline", p, nbytes);
    s.ranks[root].mark_valid(0..nbytes);
    for rank in 0..p {
        s.ranks[rank].require(0..nbytes);
    }
    if p == 1 || nbytes == 0 {
        return s;
    }
    let segment = if segment == 0 { nbytes } else { segment };
    for rank in 0..p {
        let relative = relative_rank(rank, root, p);
        let prev = (relative > 0).then(|| absolute_rank(relative - 1, root, p));
        let next = (relative + 1 < p).then(|| absolute_rank(relative + 1, root, p));
        let mut offset = 0usize;
        while offset < nbytes {
            let end = (offset + segment).min(nbytes);
            if let Some(pr) = prev {
                s.ranks[rank].recv("pipeline", pr, Tag::BCAST, Loc::Buf(offset..end));
            }
            if let Some(nx) = next {
                s.ranks[rank].isend("pipeline", nx, Tag::BCAST, Loc::Buf(offset..end));
            }
            offset = end;
        }
    }
    s
}

struct PipelineSource;

impl ScheduleSource for PipelineSource {
    fn name(&self) -> &'static str {
        "bcast/pipeline"
    }

    fn supports(&self, _p: usize) -> bool {
        true
    }

    fn schedule(&self, p: usize, nbytes: usize, root: Rank) -> Schedule {
        // A ragged multi-segment cut so the sweep exercises the overlap path.
        pipeline_schedule(p, nbytes, root, nbytes.div_ceil(3).max(1))
    }
}

pub(crate) fn schedule_sources() -> Vec<Box<dyn ScheduleSource>> {
    vec![Box::new(PipelineSource)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::pattern;
    use mpsim::{Communicator, ThreadWorld};

    fn run(size: usize, nbytes: usize, root: usize, segment: usize) -> mpsim::WorldTraffic {
        let src = pattern(nbytes, 77);
        let out = ThreadWorld::run(size, |comm| {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            bcast_pipeline(comm, &mut buf, root, segment).unwrap();
            assert_eq!(buf, src, "rank {}", comm.rank());
        });
        out.traffic
    }

    #[test]
    fn completes_for_many_shapes() {
        for &(size, nbytes, root, segment) in &[
            (2usize, 64usize, 0usize, 16usize),
            (8, 100, 0, 7),   // ragged last segment
            (8, 100, 5, 100), // single segment
            (10, 1000, 9, 0), // segment=0 → whole buffer
            (5, 3, 2, 1),     // one byte per segment
            (7, 0, 3, 16),    // empty buffer
            (1, 64, 0, 8),    // single rank
        ] {
            run(size, nbytes, root, segment);
        }
    }

    #[test]
    fn message_count_matches_model() {
        for &(size, nbytes, segment) in
            &[(8usize, 100usize, 7usize), (4, 64, 16), (10, 1000, 128), (3, 50, 0)]
        {
            let traffic = run(size, nbytes, 0, segment);
            assert_eq!(
                traffic.total_msgs(),
                pipeline_msgs(nbytes, segment, size),
                "size={size} nbytes={nbytes} segment={segment}"
            );
            // every byte crosses every link once
            assert_eq!(traffic.total_bytes(), ((size - 1) * nbytes) as u64);
        }
    }

    #[test]
    fn pipelining_beats_whole_message_chain_on_the_simulator() {
        use netsim::{NetworkModel, Placement, SimWorld};
        let nbytes = 1 << 16;
        let time_with_segment = |segment: usize| {
            let mut model = NetworkModel::uniform(500.0, 1.0);
            model.eager_threshold = usize::MAX; // eager so forwards overlap
            let src = pattern(nbytes, 78);
            SimWorld::run(model, Placement::new(4), 8, move |comm| {
                let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
                bcast_pipeline(comm, &mut buf, 0, segment).unwrap();
            })
            .makespan_ns
        };
        let chunked = time_with_segment(4096);
        let whole = time_with_segment(0);
        assert!(
            chunked < whole * 0.6,
            "pipelining should cut the chain time substantially: {chunked} vs {whole}"
        );
    }
}
