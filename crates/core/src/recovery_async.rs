//! The self-healing broadcast as futures: the full recovery stack of
//! [`crate::recovery`] — guarded attempts, epoch tag isolation, heartbeat
//! agreement, root succession, degraded-schedule reruns — generalized over
//! [`AsyncCommunicator`], so it runs unchanged on the discrete-event
//! executor at megascale (`P = 256..4096`) under its virtual clock.
//!
//! The structure mirrors the blocking implementation deliberately: the same
//! decorators ([`EpochComm`], [`GuardedComm`]) gain `AsyncCommunicator`
//! impls, [`mpsim::SubComm`] gains an async view, and the epoch loop in
//! [`self_healing_bcast_traced_async`] is line-for-line the loop of
//! [`crate::recovery::self_healing_bcast_with`], so a seeded fault plan
//! replays to the identical survivor set on both surfaces (asserted by the
//! cross-executor chaos battery).
//!
//! Two things are new relative to the blocking path:
//!
//! * **Cascading multi-failure recovery.** Crashes that land *during* an
//!   agreement round or mid-degraded-schedule simply surface as the next
//!   epoch's deaths: membership-digest tag isolation
//!   ([`crate::recovery::membership_digest`]) keeps verdict-split groups
//!   from corrupting each other, and agreement self-crash detection keeps a
//!   dying rank from poisoning its own verdict. Root-succession chains of
//!   any depth fall out of iterating the same succession rule.
//! * **Tracing.** Every run can record a [`RecoveryTrace`] — epochs
//!   entered, succession chain, deaths observed, branch bits — which is the
//!   coverage signal `chaos-search` steers by and the megascale tests
//!   assert on.
//!
//! On the virtual clock every timeout is free: a heartbeat deadline of
//! seconds elapses in zero wall time, so recovery at `P = 4096` with
//! cascading failures completes in well under a second of real time.

use std::collections::BTreeSet;
use std::time::Duration;

use mpsim::{AsyncCommunicator, CommError, Rank, Result, SubComm, Tag};

use crate::bcast::{bcast_with_async, Algorithm};
use crate::recovery::{
    branch, membership_digest, EpochComm, GuardedComm, Healed, RecoveryConfig, RecoveryDrill,
    RecoveryTrace, Report, Verdict, AGREEMENT_TAG_BASE, EPOCH_TAG_STRIDE,
};

impl<C: AsyncCommunicator + ?Sized> AsyncCommunicator for EpochComm<'_, C> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn check_rank(&self, rank: Rank) -> Result<()> {
        self.inner.check_rank(rank)
    }

    async fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.inner.send(buf, dest, self.shifted(tag)).await
    }

    async fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.inner.recv(buf, src, self.shifted(tag)).await
    }

    async fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<usize> {
        self.inner.recv_timeout(buf, src, self.shifted(tag), timeout).await
    }

    async fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        self.inner
            .sendrecv(sendbuf, dest, self.shifted(sendtag), recvbuf, src, self.shifted(recvtag))
            .await
    }

    async fn barrier(&self) -> Result<()> {
        self.inner.barrier().await
    }

    fn make_shared(&self, data: &[u8]) -> mpsim::SharedBuf {
        self.inner.make_shared(data)
    }

    fn note_copy(&self, bytes: usize) {
        self.inner.note_copy(bytes)
    }

    async fn send_shared(&self, buf: &mpsim::SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.inner.send_shared(buf, dest, self.shifted(tag)).await
    }

    async fn recv_owned(&self, capacity: usize, src: Rank, tag: Tag) -> Result<mpsim::SharedBuf> {
        self.inner.recv_owned(capacity, src, self.shifted(tag)).await
    }

    async fn recv_owned_timeout(
        &self,
        capacity: usize,
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<mpsim::SharedBuf> {
        self.inner.recv_owned_timeout(capacity, src, self.shifted(tag), timeout).await
    }

    async fn sendrecv_shared(
        &self,
        sendbuf: &mpsim::SharedBuf,
        dest: Rank,
        sendtag: Tag,
        recv_capacity: usize,
        src: Rank,
        recvtag: Tag,
    ) -> Result<mpsim::SharedBuf> {
        self.inner
            .sendrecv_shared(
                sendbuf,
                dest,
                self.shifted(sendtag),
                recv_capacity,
                src,
                self.shifted(recvtag),
            )
            .await
    }
}

impl<C: AsyncCommunicator + ?Sized> AsyncCommunicator for GuardedComm<'_, C> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn check_rank(&self, rank: Rank) -> Result<()> {
        self.inner.check_rank(rank)
    }

    async fn send(&self, buf: &[u8], dest: Rank, tag: Tag) -> Result<()> {
        self.inner.send(buf, dest, tag).await
    }

    async fn recv(&self, buf: &mut [u8], src: Rank, tag: Tag) -> Result<usize> {
        self.inner.recv_timeout(buf, src, tag, self.step_timeout).await
    }

    async fn recv_timeout(
        &self,
        buf: &mut [u8],
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<usize> {
        self.inner.recv_timeout(buf, src, tag, timeout.min(self.step_timeout)).await
    }

    async fn sendrecv(
        &self,
        sendbuf: &[u8],
        dest: Rank,
        sendtag: Tag,
        recvbuf: &mut [u8],
        src: Rank,
        recvtag: Tag,
    ) -> Result<usize> {
        if self.passthrough_sendrecv {
            return self.inner.sendrecv(sendbuf, dest, sendtag, recvbuf, src, recvtag).await;
        }
        // Same decomposition as the blocking guard: eager send, bounded
        // receive — sound only on eagerly-delivering transports.
        self.inner.send(sendbuf, dest, sendtag).await?;
        self.inner.recv_timeout(recvbuf, src, recvtag, self.step_timeout).await
    }

    async fn barrier(&self) -> Result<()> {
        self.inner.barrier().await
    }

    fn make_shared(&self, data: &[u8]) -> mpsim::SharedBuf {
        self.inner.make_shared(data)
    }

    fn note_copy(&self, bytes: usize) {
        self.inner.note_copy(bytes)
    }

    async fn send_shared(&self, buf: &mpsim::SharedBuf, dest: Rank, tag: Tag) -> Result<()> {
        self.inner.send_shared(buf, dest, tag).await
    }

    async fn recv_owned(&self, capacity: usize, src: Rank, tag: Tag) -> Result<mpsim::SharedBuf> {
        // Same mapping as `recv`: every unbounded owned receive becomes a
        // step-bounded one.
        self.inner.recv_owned_timeout(capacity, src, tag, self.step_timeout).await
    }

    async fn recv_owned_timeout(
        &self,
        capacity: usize,
        src: Rank,
        tag: Tag,
        timeout: Duration,
    ) -> Result<mpsim::SharedBuf> {
        self.inner.recv_owned_timeout(capacity, src, tag, timeout.min(self.step_timeout)).await
    }

    async fn sendrecv_shared(
        &self,
        sendbuf: &mpsim::SharedBuf,
        dest: Rank,
        sendtag: Tag,
        recv_capacity: usize,
        src: Rank,
        recvtag: Tag,
    ) -> Result<mpsim::SharedBuf> {
        if self.passthrough_sendrecv {
            return self
                .inner
                .sendrecv_shared(sendbuf, dest, sendtag, recv_capacity, src, recvtag)
                .await;
        }
        // Same decomposition as `sendrecv`: eager send, bounded receive.
        self.inner.send_shared(sendbuf, dest, sendtag).await?;
        self.inner.recv_owned_timeout(recv_capacity, src, recvtag, self.step_timeout).await
    }
}

// The vectored operations of both decorators intentionally use the trait
// defaults (gather/scatter through `send`/`recv`), matching the blocking
// impls exactly: the per-link operation sequence a fault plan's crash clock
// counts is then identical on both surfaces, which is what makes seeded
// cross-executor replays line up. The zero-copy operations, by contrast,
// forward natively (with the same tag shifting / timeout bounding as their
// copying twins): they bottom out in the same per-link send/recv sequence,
// so replay stays aligned while the payload keeps its refcounted envelope
// all the way down to the executor.

/// Async twin of the blocking agreement round: exchange [`Report`]s among
/// `members` (world numbering) under the heartbeat deadline and fold them
/// into a [`Verdict`]. Same pairwise ascending-order exchange, same
/// dead-iff-missed-heartbeat rule, same self-crash propagation.
pub(crate) async fn agree_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    members: &[Rank],
    epoch: u32,
    mine: &Report,
    cfg: &RecoveryConfig,
    trace: &mut RecoveryTrace,
) -> Result<Verdict> {
    let me = comm.rank();
    let tag = Tag(AGREEMENT_TAG_BASE.wrapping_add(epoch.wrapping_mul(EPOCH_TAG_STRIDE)));
    let encoded = mine.encode();
    let hb = cfg.heartbeat_timeout(members.len());

    let mut dead = BTreeSet::new();
    let mut have_full = BTreeSet::new();
    if mine.has_full {
        have_full.insert(me);
    }

    let mut frame = [0u8; 1];
    for &peer in members {
        if peer == me {
            continue;
        }
        let outcome = if cfg.bounded_sendrecv {
            comm.sendrecv(&encoded, peer, tag, &mut frame, peer, tag).await
        } else {
            match comm.send(&encoded, peer, tag).await {
                Ok(()) => comm.recv_timeout(&mut frame, peer, tag, hb).await,
                Err(e) => Err(e),
            }
        };
        match outcome {
            Ok(n) => match Report::decode(&frame[..n]) {
                Some(theirs) => {
                    if theirs.has_full {
                        have_full.insert(peer);
                    }
                }
                None => {
                    trace.hit(branch::GARBLED_REPORT);
                    dead.insert(peer);
                }
            },
            Err(CommError::PeerFailed { rank }) if rank == me => {
                return Err(CommError::PeerFailed { rank: me });
            }
            Err(CommError::Timeout { .. }) | Err(CommError::PeerFailed { .. }) => {
                dead.insert(peer);
            }
            Err(e) => return Err(e),
        }
    }
    have_full.retain(|r| !dead.contains(r));
    Ok(Verdict { dead, have_full })
}

/// Async [`crate::recovery::self_healing_bcast`]: fault-tolerant broadcast
/// of `buf` from `root` with the paper's tuned scatter–ring, healing around
/// fail-stop crashes — over any [`AsyncCommunicator`].
pub async fn self_healing_bcast_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
    cfg: &RecoveryConfig,
) -> Result<Healed> {
    self_healing_bcast_with_async(comm, buf, root, Algorithm::ScatterRingTuned, cfg).await
}

/// [`self_healing_bcast_async`] with an explicit algorithm for the attempts.
pub async fn self_healing_bcast_with_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
    algorithm: Algorithm,
    cfg: &RecoveryConfig,
) -> Result<Healed> {
    let mut trace = RecoveryTrace::default();
    self_healing_bcast_traced_async(
        comm,
        buf,
        root,
        algorithm,
        cfg,
        &RecoveryDrill::NONE,
        &mut trace,
    )
    .await
}

/// The fully-instrumented entry point: [`self_healing_bcast_with_async`]
/// plus a [`RecoveryTrace`] filled in as the epoch loop runs (also on the
/// error paths — a crashed or starved rank still reports how far it got)
/// and the [`RecoveryDrill`] regression knobs for the chaos-search drill.
pub async fn self_healing_bcast_traced_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
    algorithm: Algorithm,
    cfg: &RecoveryConfig,
    drill: &RecoveryDrill,
    trace: &mut RecoveryTrace,
) -> Result<Healed> {
    comm.check_rank(root)?;
    assert!(cfg.max_epochs >= 1, "at least one attempt is required");
    let max_epochs =
        drill.clamp_epoch_budget.map_or(cfg.max_epochs, |c| c.clamp(1, cfg.max_epochs));
    let me = comm.rank();
    let mut members: Vec<Rank> = (0..comm.size()).collect();
    let mut current_root = root;
    let mut has_full = me == root;
    let mut all_dead: BTreeSet<Rank> = BTreeSet::new();
    trace.root_chain.push(root);

    for epoch in 0..max_epochs {
        trace.epochs_entered = epoch + 1;
        let sub = SubComm::new_async(comm, members.clone())
            // lint: allow(panic) — `me` is always kept in `members` (checked below)
            .expect("member list lost this rank");
        let local_root = sub
            .from_parent(current_root)
            // lint: allow(panic) — root succession keeps the root a member
            // (unless the drill knob disables succession on purpose)
            .unwrap_or_else(|| panic!("root {current_root} is not a member"));
        let epoch_comm = EpochComm::isolated(&sub, epoch, membership_digest(&members));
        let mut guarded = GuardedComm::new(&epoch_comm, cfg.step_timeout);
        if cfg.bounded_sendrecv {
            guarded = guarded.passthrough_sendrecv();
        }

        let attempt = bcast_with_async(&guarded, buf, local_root, algorithm).await;
        match attempt {
            Ok(()) => {
                trace.hit(branch::CLEAN_ATTEMPT);
                has_full = true;
            }
            // Attempt-time stalls only mark the attempt failed; membership
            // is decided by the agreement round. Errors from the sub-world
            // stack name *local* ranks.
            Err(CommError::Timeout { peer }) | Err(CommError::PeerFailed { rank: peer }) => {
                if peer < members.len() && members[peer] == me {
                    trace.hit(branch::SELF_CRASH);
                    return Err(CommError::PeerFailed { rank: me });
                }
                trace.hit(branch::STALLED_ATTEMPT);
            }
            Err(e) => return Err(e),
        }

        let report = Report { has_full: has_full || drill.claim_full_payload };
        let verdict = match agree_async(comm, &members, epoch, &report, cfg, trace).await {
            Ok(v) => v,
            Err(CommError::PeerFailed { rank }) if rank == me => {
                trace.hit(branch::SELF_CRASH);
                return Err(CommError::PeerFailed { rank: me });
            }
            Err(e) => return Err(e),
        };

        if !verdict.dead.is_empty() {
            trace.hit(branch::DEATH_OBSERVED);
            all_dead.extend(verdict.dead.iter().copied());
            trace.deaths_observed = all_dead.len();
        }

        if verdict.dead.is_empty() && verdict.have_full.len() == members.len() {
            trace.hit(branch::HEALED_ALL);
            return Ok(Healed { survivors: members, epochs: epoch + 1 });
        }

        members.retain(|r| !verdict.dead.contains(r));
        match verdict.have_full.iter().next() {
            Some(&lowest) => {
                // `skip_root_succession` is the seeded regression: a dead
                // root keeps the role.
                let keeps_role =
                    verdict.have_full.contains(&current_root) || drill.skip_root_succession;
                let next_root = if keeps_role { current_root } else { lowest };
                if next_root != current_root {
                    trace.hit(branch::ROOT_SUCCESSION);
                    trace.succession_depth += 1;
                    trace.root_chain.push(next_root);
                }
                current_root = next_root;
            }
            None => {
                trace.hit(branch::PAYLOAD_LOST);
                return Err(CommError::PeerFailed { rank: root });
            }
        }
        if members.len() == verdict.have_full.len()
            && members.iter().all(|r| verdict.have_full.contains(r))
        {
            trace.hit(branch::HEALED_SURVIVORS);
            return Ok(Healed { survivors: members, epochs: epoch + 1 });
        }
    }
    trace.hit(branch::EPOCH_BUDGET_EXHAUSTED);
    Err(CommError::Timeout { peer: current_root })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::{complete_now, Communicator, EventWorld, SyncComm, ThreadWorld};

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 + 11) as u8).collect()
    }

    fn quick_cfg() -> RecoveryConfig {
        RecoveryConfig { step_timeout: Duration::from_millis(100), ..RecoveryConfig::default() }
    }

    #[test]
    fn fault_free_async_bcast_on_event_world() {
        let n = 777;
        let src = pattern(n);
        let out = EventWorld::run(8, |comm| {
            let src = src.clone();
            async move {
                let mut buf = if comm.rank() == 2 { src.clone() } else { vec![0u8; n] };
                let healed =
                    self_healing_bcast_async(&comm, &mut buf, 2, &quick_cfg()).await.unwrap();
                assert_eq!(buf, src);
                healed
            }
        });
        for h in &out.results {
            assert_eq!(h.epochs, 1);
            assert_eq!(h.survivors, (0..8).collect::<Vec<_>>());
        }
        assert!(out.traffic.is_balanced(), "fault-free recovery must reconcile exactly");
    }

    #[test]
    fn survivors_heal_around_an_exiting_rank_on_event_world() {
        let n = 4096;
        let src = pattern(n);
        let out = EventWorld::run(8, |comm| {
            let src = src.clone();
            async move {
                if comm.rank() == 5 {
                    return None; // fail-stop before participating
                }
                let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; n] };
                let mut trace = RecoveryTrace::default();
                let healed = self_healing_bcast_traced_async(
                    &comm,
                    &mut buf,
                    0,
                    Algorithm::ScatterRingTuned,
                    &quick_cfg(),
                    &RecoveryDrill::NONE,
                    &mut trace,
                )
                .await
                .unwrap();
                assert_eq!(buf, src);
                Some((healed, trace))
            }
        });
        let expected: Vec<Rank> = vec![0, 1, 2, 3, 4, 6, 7];
        for (rank, res) in out.results.iter().enumerate() {
            if rank == 5 {
                assert!(res.is_none());
                continue;
            }
            let (h, trace) = res.as_ref().unwrap();
            assert_eq!(h.survivors, expected, "rank {rank} saw a different survivor set");
            assert!(h.epochs >= 2, "a healing epoch must have run");
            assert!(trace.saw(branch::DEATH_OBSERVED));
            assert_eq!(trace.deaths_observed, 1);
            assert_eq!(trace.root_chain, vec![0], "root 0 never moved");
        }
    }

    #[test]
    fn async_matches_sync_on_the_bridge() {
        // The same world driven through SyncComm + complete_now must land on
        // the identical outcome as the blocking entry point.
        let n = 1000;
        let src = pattern(n);
        let sync_out = ThreadWorld::run(4, {
            let src = src.clone();
            move |comm| {
                let mut buf = if comm.rank() == 1 { src.clone() } else { vec![0u8; n] };
                crate::recovery::self_healing_bcast(comm, &mut buf, 1, &quick_cfg()).unwrap()
            }
        });
        let bridged = ThreadWorld::run(4, {
            let src = src.clone();
            move |comm| {
                let mut buf = if comm.rank() == 1 { src.clone() } else { vec![0u8; n] };
                complete_now(self_healing_bcast_async(
                    &SyncComm::new(comm),
                    &mut buf,
                    1,
                    &quick_cfg(),
                ))
                .unwrap()
            }
        });
        assert_eq!(sync_out.results, bridged.results);
    }

    #[test]
    fn async_sub_comm_exchanges_within_subset() {
        let out = EventWorld::run(5, |comm| async move {
            let Some(sc) = SubComm::new_async(&comm, vec![4, 2, 0]) else {
                return 0u8;
            };
            sc.barrier().await.unwrap();
            if sc.rank() == 0 {
                sc.send(&[77], 2, Tag(1)).await.unwrap();
                0
            } else if sc.rank() == 2 {
                let mut b = [0u8; 1];
                sc.recv(&mut b, 0, Tag(1)).await.unwrap();
                b[0]
            } else {
                0
            }
        });
        assert_eq!(out.results[0], 77);
    }
}
