//! Variable-count collectives — `MPI_Allgatherv`, `MPI_Scatterv`,
//! `MPI_Gatherv` — the irregular-block versions real applications use when
//! their domain decomposition doesn't divide evenly (the paper's Section I
//! notes non-power-of-two worlds often arise exactly this way, from
//! "splitting on the communicator in the applications").
//!
//! Counts/displacements follow MPI semantics: `counts[r]` bytes from rank
//! `r`, placed at `displs[r]` of the assembled buffer. Every rank must pass
//! identical `counts`/`displs` (collective arguments).

use mpsim::{
    absolute_rank, relative_rank, ring_left, ring_right, split_send_recv, Communicator, Rank,
    Result, Tag,
};

const AGV: Tag = Tag(0xF8);
const SCV: Tag = Tag(0xF9);
const GAV: Tag = Tag(0xFA);

/// Contiguous displacements for `counts` (the common packed layout).
pub fn packed_displs(counts: &[usize]) -> Vec<usize> {
    let mut displs = Vec::with_capacity(counts.len());
    let mut acc = 0;
    for &c in counts {
        displs.push(acc);
        acc += c;
    }
    displs
}

/// Total bytes covered by `counts`.
pub fn total(counts: &[usize]) -> usize {
    counts.iter().sum()
}

fn check_layout(counts: &[usize], displs: &[usize], len: usize) {
    assert_eq!(counts.len(), displs.len());
    for (&c, &d) in counts.iter().zip(displs) {
        assert!(d + c <= len, "count/displacement escapes the buffer");
    }
}

/// Ring allgatherv: rank `r` contributes `sendbuf` (`counts[r]` bytes);
/// every rank assembles all contributions into `recvbuf` at `displs`.
///
/// The ring forwards whichever block arrived last, so step `i` moves block
/// `(rank − i) mod P` — identical structure to the uniform ring, with
/// per-block sizes taken from `counts`.
pub fn allgatherv_ring(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    counts: &[usize],
    displs: &[usize],
) -> Result<()> {
    let size = comm.size();
    let rank = comm.rank();
    assert_eq!(counts.len(), size, "one count per rank");
    check_layout(counts, displs, recvbuf.len());
    assert_eq!(sendbuf.len(), counts[rank], "sendbuf must match counts[rank]");

    recvbuf[displs[rank]..displs[rank] + counts[rank]].copy_from_slice(sendbuf);
    if size == 1 {
        return Ok(());
    }
    let left = ring_left(rank, size);
    let right = ring_right(rank, size);
    let mut j = rank;
    let mut jnext = left;
    for _ in 1..size {
        let (sb, rb) =
            split_send_recv(recvbuf, displs[j], counts[j], displs[jnext], counts[jnext])?;
        comm.sendrecv(sb, right, AGV, rb, left, AGV)?;
        j = jnext;
        jnext = ring_left(jnext, size);
    }
    Ok(())
}

/// Scatterv over a flat star from the root (MPICH's default for irregular
/// scatters: tree distribution needs uniform subtree sizes to pay off).
/// Rank `r` receives `counts[r]` bytes into `recvbuf` from the root's
/// `sendbuf[displs[r]..]`.
pub fn scatterv_linear(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    counts: &[usize],
    displs: &[usize],
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    let rank = comm.rank();
    assert_eq!(counts.len(), size);
    assert_eq!(recvbuf.len(), counts[rank]);
    if rank == root {
        check_layout(counts, displs, sendbuf.len());
        for rel in 1..size {
            let peer = absolute_rank(rel, root, size);
            comm.send(&sendbuf[displs[peer]..displs[peer] + counts[peer]], peer, SCV)?;
        }
        recvbuf.copy_from_slice(&sendbuf[displs[rank]..displs[rank] + counts[rank]]);
    } else {
        let n = comm.recv(recvbuf, root, SCV)?;
        debug_assert_eq!(n, counts[rank]);
    }
    Ok(())
}

/// Gatherv to the root over a binomial tree: rank `r` contributes
/// `counts[r]` bytes which land at `displs[r]` of the root's `recvbuf`.
///
/// Internal tree nodes forward their subtree's blocks *packed in relative
/// rank order* so each hop is one message, then the root scatters the packed
/// image into the user's (possibly non-contiguous) displacements.
pub fn gatherv_binomial(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    counts: &[usize],
    displs: &[usize],
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    let rank = comm.rank();
    assert_eq!(counts.len(), size);
    assert_eq!(sendbuf.len(), counts[rank]);
    if rank == root {
        check_layout(counts, displs, recvbuf.len());
    }

    let relative = relative_rank(rank, root, size);
    // Packed staging in relative-rank order.
    let rel_counts: Vec<usize> =
        (0..size).map(|rel| counts[absolute_rank(rel, root, size)]).collect();
    let rel_displs = packed_displs(&rel_counts);
    let mut stage = vec![0u8; total(&rel_counts)];
    stage[rel_displs[relative]..rel_displs[relative] + rel_counts[relative]]
        .copy_from_slice(sendbuf);

    let mut mask = 1usize;
    while mask < size {
        if relative & mask != 0 {
            // ship our packed subtree [relative, relative+span) to the parent
            let span_end = (relative + mask).min(size);
            let lo = rel_displs[relative];
            let hi = if span_end == size { stage.len() } else { rel_displs[span_end] };
            let parent = absolute_rank(relative - mask, root, size);
            comm.send(&stage[lo..hi], parent, GAV)?;
            break;
        }
        let child_rel = relative + mask;
        if child_rel < size {
            let span_end = (child_rel + mask).min(size);
            let lo = rel_displs[child_rel];
            let hi = if span_end == size { stage.len() } else { rel_displs[span_end] };
            let got = comm.recv(&mut stage[lo..hi], absolute_rank(child_rel, root, size), GAV)?;
            debug_assert_eq!(got, hi - lo);
        }
        mask <<= 1;
    }

    if rank == root {
        for rel in 0..size {
            let abs = absolute_rank(rel, root, size);
            recvbuf[displs[abs]..displs[abs] + counts[abs]]
                .copy_from_slice(&stage[rel_displs[rel]..rel_displs[rel] + rel_counts[rel]]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    fn counts_for(size: usize) -> Vec<usize> {
        (0..size).map(|r| (r * 3 + 1) % 17).collect() // irregular, includes 1s
    }

    fn contribution(rank: usize, count: usize) -> Vec<u8> {
        (0..count).map(|i| ((rank * 41 + i) % 251) as u8).collect()
    }

    #[test]
    fn packed_displs_accumulate() {
        assert_eq!(packed_displs(&[3, 0, 5]), vec![0, 3, 3]);
        assert_eq!(total(&[3, 0, 5]), 8);
        assert!(packed_displs(&[]).is_empty());
    }

    #[test]
    fn allgatherv_assembles_irregular_blocks() {
        for size in [1usize, 2, 5, 8, 10, 13] {
            let counts = counts_for(size);
            let displs = packed_displs(&counts);
            let n = total(&counts);
            let out = ThreadWorld::run(size, |comm| {
                let mine = contribution(comm.rank(), counts[comm.rank()]);
                let mut all = vec![0u8; n];
                allgatherv_ring(comm, &mine, &mut all, &counts, &displs).unwrap();
                all
            });
            let want: Vec<u8> = (0..size).flat_map(|r| contribution(r, counts[r])).collect();
            for (rank, got) in out.results.iter().enumerate() {
                assert_eq!(got, &want, "size={size} rank={rank}");
            }
        }
    }

    #[test]
    fn allgatherv_with_gaps_in_displacements() {
        let size = 4;
        let counts = vec![2usize, 3, 1, 2];
        let displs = vec![0usize, 4, 9, 12]; // gaps at 2..4, 7..9, 10..12
        let out = ThreadWorld::run(size, |comm| {
            let mine = contribution(comm.rank(), counts[comm.rank()]);
            let mut all = vec![0xEEu8; 14];
            allgatherv_ring(comm, &mine, &mut all, &counts, &displs).unwrap();
            all
        });
        for got in &out.results {
            assert_eq!(&got[0..2], &contribution(0, 2)[..]);
            assert_eq!(got[2], 0xEE); // gap untouched
            assert_eq!(&got[4..7], &contribution(1, 3)[..]);
            assert_eq!(&got[9..10], &contribution(2, 1)[..]);
            assert_eq!(&got[12..14], &contribution(3, 2)[..]);
        }
    }

    #[test]
    fn scatterv_delivers_irregular_blocks() {
        for &(size, root) in &[(1usize, 0usize), (5, 2), (10, 9), (8, 0)] {
            let counts = counts_for(size);
            let displs = packed_displs(&counts);
            let payload: Vec<u8> = (0..size).flat_map(|r| contribution(r, counts[r])).collect();
            let out = ThreadWorld::run(size, |comm| {
                let sendbuf = if comm.rank() == root { payload.clone() } else { vec![] };
                let mut mine = vec![0u8; counts[comm.rank()]];
                scatterv_linear(comm, &sendbuf, &mut mine, &counts, &displs, root).unwrap();
                mine
            });
            for (rank, got) in out.results.iter().enumerate() {
                assert_eq!(got, &contribution(rank, counts[rank]), "size={size} rank={rank}");
            }
        }
    }

    #[test]
    fn gatherv_collects_irregular_blocks() {
        for &(size, root) in &[(1usize, 0usize), (2, 1), (5, 2), (10, 9), (13, 0)] {
            let counts = counts_for(size);
            let displs = packed_displs(&counts);
            let n = total(&counts);
            let out = ThreadWorld::run(size, |comm| {
                let mine = contribution(comm.rank(), counts[comm.rank()]);
                let mut all = if comm.rank() == root { vec![0u8; n] } else { vec![] };
                gatherv_binomial(comm, &mine, &mut all, &counts, &displs, root).unwrap();
                all
            });
            let want: Vec<u8> = (0..size).flat_map(|r| contribution(r, counts[r])).collect();
            assert_eq!(out.results[root], want, "size={size} root={root}");
            // binomial: one message per non-root rank
            assert_eq!(out.traffic.total_msgs(), (size - 1) as u64);
        }
    }

    #[test]
    fn gatherv_handles_zero_counts() {
        let size = 6;
        let counts = vec![0usize, 3, 0, 2, 0, 1];
        let displs = packed_displs(&counts);
        let out = ThreadWorld::run(size, |comm| {
            let mine = contribution(comm.rank(), counts[comm.rank()]);
            let mut all = if comm.rank() == 0 { vec![0u8; total(&counts)] } else { vec![] };
            gatherv_binomial(comm, &mine, &mut all, &counts, &displs, 0).unwrap();
            all
        });
        let want: Vec<u8> = (0..size).flat_map(|r| contribution(r, counts[r])).collect();
        assert_eq!(out.results[0], want);
    }

    #[test]
    fn scatterv_then_gatherv_round_trips() {
        let (size, root) = (9usize, 4usize);
        let counts = counts_for(size);
        let displs = packed_displs(&counts);
        let payload: Vec<u8> = (0..size).flat_map(|r| contribution(r, counts[r])).collect();
        let out = ThreadWorld::run(size, |comm| {
            let sendbuf = if comm.rank() == root { payload.clone() } else { vec![] };
            let mut mine = vec![0u8; counts[comm.rank()]];
            scatterv_linear(comm, &sendbuf, &mut mine, &counts, &displs, root).unwrap();
            let mut back = if comm.rank() == root { vec![0u8; total(&counts)] } else { vec![] };
            gatherv_binomial(comm, &mine, &mut back, &counts, &displs, root).unwrap();
            back
        });
        assert_eq!(out.results[root], payload);
    }
}
