//! Chunk geometry of scatter-based broadcasts.
//!
//! Before the scatter phase, the `nbytes`-byte source buffer is divided into
//! `P` chunks of `scatter_size = ceil(nbytes / P)` bytes each (Listing 1 of
//! the paper). Because of the ceiling, the last chunk may be short and — when
//! `nbytes < P·scatter_size − scatter_size`, i.e. for very small messages —
//! trailing chunks may be empty. All displacement/count arithmetic for every
//! algorithm in this crate goes through [`ChunkLayout`] so the clamping rules
//! (`count = max(0, min(scatter_size, nbytes − i·scatter_size))`) live in one
//! place.

use std::ops::Range;

use mpsim::ceil_div;

/// Geometry of the `P`-way chunking of an `nbytes` buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLayout {
    nbytes: usize,
    chunks: usize,
    scatter_size: usize,
}

impl ChunkLayout {
    /// Layout for broadcasting `nbytes` among `chunks` (= communicator size)
    /// pieces.
    pub fn new(nbytes: usize, chunks: usize) -> Self {
        assert!(chunks >= 1, "layout needs at least one chunk");
        let scatter_size = if nbytes == 0 { 0 } else { ceil_div(nbytes, chunks) };
        Self { nbytes, chunks, scatter_size }
    }

    /// Total buffer size in bytes.
    pub fn nbytes(&self) -> usize {
        self.nbytes
    }

    /// Number of chunks (the communicator size `P`).
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// The paper's `scatter_size = (nbytes + comm_size − 1) / comm_size`.
    pub fn scatter_size(&self) -> usize {
        self.scatter_size
    }

    /// Payload bytes of chunk `i`: `min(scatter_size, nbytes − i·scatter_size)`
    /// clamped below at 0, exactly as the pseudo-code computes
    /// `left_count`/`right_count`.
    pub fn count(&self, i: usize) -> usize {
        debug_assert!(i < self.chunks);
        let start = i.saturating_mul(self.scatter_size);
        self.scatter_size.min(self.nbytes.saturating_sub(start))
    }

    /// Displacement of chunk `i`, clamped into the buffer so that
    /// `disp(i)..disp(i)+count(i)` is always a valid (possibly empty) range.
    pub fn disp(&self, i: usize) -> usize {
        debug_assert!(i < self.chunks);
        (i * self.scatter_size).min(self.nbytes)
    }

    /// Byte range of chunk `i`.
    pub fn range(&self, i: usize) -> Range<usize> {
        let d = self.disp(i);
        d..d + self.count(i)
    }

    /// Byte range covered by the contiguous chunk interval `[first, last)`.
    ///
    /// Used by recursive-doubling allgather, which exchanges whole intervals
    /// of chunks per round.
    pub fn span(&self, chunk_range: Range<usize>) -> Range<usize> {
        debug_assert!(chunk_range.start <= chunk_range.end && chunk_range.end <= self.chunks);
        let start = (chunk_range.start * self.scatter_size).min(self.nbytes);
        let end = (chunk_range.end * self.scatter_size).min(self.nbytes);
        start..end
    }

    /// Bytes in the chunk interval `[first, last)`.
    pub fn span_bytes(&self, chunk_range: Range<usize>) -> usize {
        let r = self.span(chunk_range);
        r.end - r.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_division() {
        let l = ChunkLayout::new(80, 8);
        assert_eq!(l.scatter_size(), 10);
        for i in 0..8 {
            assert_eq!(l.count(i), 10);
            assert_eq!(l.disp(i), i * 10);
        }
    }

    #[test]
    fn chunks_tile_the_buffer() {
        for nbytes in [0usize, 1, 7, 8, 9, 100, 12288, 524287] {
            for chunks in [1usize, 2, 3, 8, 10, 129] {
                let l = ChunkLayout::new(nbytes, chunks);
                let total: usize = (0..chunks).map(|i| l.count(i)).sum();
                assert_eq!(total, nbytes, "nbytes={nbytes} chunks={chunks}");
                // ranges are contiguous and ordered
                let mut pos = 0;
                for i in 0..chunks {
                    let r = l.range(i);
                    assert_eq!(r.start, pos.min(l.nbytes()));
                    pos = r.end.max(pos);
                }
                assert_eq!(pos, nbytes);
            }
        }
    }

    #[test]
    fn short_last_chunk() {
        // 10 bytes over 4 chunks: scatter_size = 3, counts 3,3,3,1
        let l = ChunkLayout::new(10, 4);
        assert_eq!(l.scatter_size(), 3);
        assert_eq!((0..4).map(|i| l.count(i)).collect::<Vec<_>>(), vec![3, 3, 3, 1]);
    }

    #[test]
    fn empty_trailing_chunks_when_message_smaller_than_p() {
        // 3 bytes over 8 chunks: scatter_size = 1, counts 1,1,1,0,0,0,0,0
        let l = ChunkLayout::new(3, 8);
        assert_eq!(l.scatter_size(), 1);
        let counts: Vec<_> = (0..8).map(|i| l.count(i)).collect();
        assert_eq!(counts, vec![1, 1, 1, 0, 0, 0, 0, 0]);
        // displacements of empty chunks stay in-bounds
        for i in 0..8 {
            let r = l.range(i);
            assert!(r.end <= 3);
        }
    }

    #[test]
    fn zero_bytes() {
        let l = ChunkLayout::new(0, 5);
        assert_eq!(l.scatter_size(), 0);
        for i in 0..5 {
            assert_eq!(l.count(i), 0);
            assert_eq!(l.range(i), 0..0);
        }
    }

    #[test]
    fn paper_medium_message_geometry() {
        // ms = 12288 over 10 ranks: scatter_size = 1229, last chunk = 12288 − 9·1229 = 1227
        let l = ChunkLayout::new(12288, 10);
        assert_eq!(l.scatter_size(), 1229);
        assert_eq!(l.count(9), 12288 - 9 * 1229);
        assert_eq!(l.count(0), 1229);
    }

    #[test]
    fn spans() {
        let l = ChunkLayout::new(10, 4); // 3,3,3,1
        assert_eq!(l.span(0..2), 0..6);
        assert_eq!(l.span(2..4), 6..10);
        assert_eq!(l.span_bytes(3..4), 1);
        assert_eq!(l.span_bytes(0..4), 10);
        assert_eq!(l.span_bytes(2..2), 0);
    }

    #[test]
    fn span_clamps_past_end() {
        let l = ChunkLayout::new(3, 8);
        assert_eq!(l.span(4..8), 3..3);
        assert_eq!(l.span_bytes(0..8), 3);
    }
}
