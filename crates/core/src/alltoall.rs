//! `MPI_Alltoall` — personalized all-to-all exchange, MPICH repertoire:
//!
//! * [`alltoall_pairwise`] — `P − 1` steps; at step `i` rank `r` exchanges
//!   directly with `r ^ i` (power-of-two worlds) or with `(r ± i) mod P`
//!   (general case). Bandwidth-optimal; MPICH's long-message choice.
//! * [`alltoall_bruck`] — `ceil(log2 P)` steps moving packed block groups;
//!   latency-optimal for short messages at the cost of `log P / 2` extra
//!   data volume. MPICH's short-message choice.
//! * [`alltoall_auto`] — dispatch on total payload (MPICH switches around
//!   256 bytes per block for Bruck, pairwise beyond).
//!
//! Semantics: `sendbuf` holds `P` blocks of `block` bytes in destination
//! order; after the call `recvbuf[j]`-th block is the block rank `j`
//! addressed to us.

use mpsim::{is_pof2, Communicator, Result, Tag};

use crate::schedule::{Loc, Schedule, ScheduleSource};

/// MPICH's alltoall threshold: below this many bytes *per block*, use Bruck.
pub const ALLTOALL_SHORT_BLOCK: usize = 256;

const A2A: Tag = Tag(0xF0);

fn check(comm: &(impl Communicator + ?Sized), sendbuf: &[u8], recvbuf: &[u8]) -> usize {
    let size = comm.size();
    assert_eq!(sendbuf.len(), recvbuf.len(), "alltoall buffers must match");
    assert_eq!(sendbuf.len() % size, 0, "alltoall buffers must hold P equal blocks");
    sendbuf.len() / size
}

/// Pairwise-exchange alltoall: direct exchanges, `P − 1` steps.
pub fn alltoall_pairwise(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
) -> Result<()> {
    let block = check(comm, sendbuf, recvbuf);
    let size = comm.size();
    let rank = comm.rank();

    // own block copies locally
    recvbuf[rank * block..(rank + 1) * block]
        .copy_from_slice(&sendbuf[rank * block..(rank + 1) * block]);

    for i in 1..size {
        // power-of-two worlds pair up by XOR (perfect matching per step);
        // otherwise use the shifted ring pairing send→(r+i), recv←(r−i).
        let (send_to, recv_from) = if is_pof2(size) {
            (rank ^ i, rank ^ i)
        } else {
            ((rank + i) % size, (rank + size - i) % size)
        };
        comm.sendrecv(
            &sendbuf[send_to * block..(send_to + 1) * block],
            send_to,
            A2A,
            &mut recvbuf[recv_from * block..(recv_from + 1) * block],
            recv_from,
            A2A,
        )?;
    }
    Ok(())
}

/// Bruck alltoall: pack-and-forward in `ceil(log2 P)` rounds.
pub fn alltoall_bruck(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
) -> Result<()> {
    let block = check(comm, sendbuf, recvbuf);
    let size = comm.size();
    let rank = comm.rank();
    if size == 1 {
        recvbuf.copy_from_slice(sendbuf);
        return Ok(());
    }

    // Phase 1: local rotation — slot k holds the block destined to
    // (rank + k) % P.
    let mut work = vec![0u8; size * block];
    for k in 0..size {
        let dest = (rank + k) % size;
        work[k * block..(k + 1) * block]
            .copy_from_slice(&sendbuf[dest * block..(dest + 1) * block]);
    }

    // Phase 2: for each bit, ship all slots with that bit set to
    // (rank + 2^bit), receiving the analogous slots from (rank − 2^bit).
    let mut gather = Vec::with_capacity(size / 2 * block);
    let mut incoming = vec![0u8; size.div_ceil(2) * block];
    let mut bit = 1usize;
    let mut round = 0u32;
    while bit < size {
        gather.clear();
        let slots: Vec<usize> = (0..size).filter(|k| k & bit != 0).collect();
        for &k in &slots {
            gather.extend_from_slice(&work[k * block..(k + 1) * block]);
        }
        let to = (rank + bit) % size;
        let from = (rank + size - bit) % size;
        let tag = Tag(A2A.0 + 1 + round);
        let n = comm.sendrecv(&gather, to, tag, &mut incoming, from, tag)?;
        debug_assert_eq!(n, slots.len() * block);
        for (idx, &k) in slots.iter().enumerate() {
            work[k * block..(k + 1) * block]
                .copy_from_slice(&incoming[idx * block..(idx + 1) * block]);
        }
        bit <<= 1;
        round += 1;
    }

    // Phase 3: inverse rotation — slot k now holds the block *from* rank
    // (rank − k) % P.
    for k in 0..size {
        let src = (rank + size - k) % size;
        recvbuf[src * block..(src + 1) * block].copy_from_slice(&work[k * block..(k + 1) * block]);
    }
    Ok(())
}

/// MPICH-style dispatch: Bruck for short blocks, pairwise otherwise.
pub fn alltoall_auto(
    comm: &(impl Communicator + ?Sized),
    sendbuf: &[u8],
    recvbuf: &mut [u8],
) -> Result<()> {
    let size = comm.size().max(1);
    if sendbuf.len() / size < ALLTOALL_SHORT_BLOCK {
        alltoall_bruck(comm, sendbuf, recvbuf)
    } else {
        alltoall_pairwise(comm, sendbuf, recvbuf)
    }
}

/// Emit the symbolic schedule of [`alltoall_pairwise`] for `block` bytes per
/// destination. The tracked buffer is `recvbuf`; sends come out of the
/// caller's `sendbuf` and are modeled as [`Loc::Private`].
pub fn alltoall_pairwise_schedule(p: usize, block: usize) -> Schedule {
    let mut s = Schedule::new("alltoall/pairwise", p, block * p);
    for rank in 0..p {
        s.ranks[rank].mark_valid(rank * block..(rank + 1) * block);
        s.ranks[rank].require(0..block * p);
    }
    for rank in 0..p {
        for i in 1..p {
            let (send_to, recv_from) = if is_pof2(p) {
                (rank ^ i, rank ^ i)
            } else {
                ((rank + i) % p, (rank + p - i) % p)
            };
            s.ranks[rank].sendrecv(
                "pairwise",
                send_to,
                A2A,
                Loc::Private(block),
                recv_from,
                A2A,
                Loc::Buf(recv_from * block..(recv_from + 1) * block),
            );
        }
    }
    s
}

/// Emit the symbolic schedule of [`alltoall_bruck`].
///
/// The Bruck staging buffer is overwritten in place each round, so its bytes
/// are not write-once trackable; both halves of every exchange are modeled as
/// [`Loc::Private`] (send length, receive capacity) — the matching, deadlock
/// and traffic analyses still apply in full.
pub fn alltoall_bruck_schedule(p: usize, block: usize) -> Schedule {
    let mut s = Schedule::new("alltoall/bruck", p, 0);
    if p == 1 {
        return s;
    }
    let recv_capacity = p.div_ceil(2) * block;
    for rank in 0..p {
        let mut bit = 1usize;
        let mut round = 0u32;
        while bit < p {
            let slots = (0..p).filter(|k| k & bit != 0).count();
            let to = (rank + bit) % p;
            let from = (rank + p - bit) % p;
            let tag = Tag(A2A.0 + 1 + round);
            s.ranks[rank].sendrecv(
                "bruck",
                to,
                tag,
                Loc::Private(slots * block),
                from,
                tag,
                Loc::Private(recv_capacity),
            );
            bit <<= 1;
            round += 1;
        }
    }
    s
}

struct AlltoallSource {
    bruck: bool,
}

impl ScheduleSource for AlltoallSource {
    fn name(&self) -> &'static str {
        if self.bruck {
            "alltoall/bruck"
        } else {
            "alltoall/pairwise"
        }
    }

    fn supports(&self, _p: usize) -> bool {
        true
    }

    fn schedule(&self, p: usize, nbytes: usize, _root: usize) -> Schedule {
        if self.bruck {
            alltoall_bruck_schedule(p, nbytes)
        } else {
            alltoall_pairwise_schedule(p, nbytes)
        }
    }
}

pub(crate) fn schedule_sources() -> Vec<Box<dyn ScheduleSource>> {
    vec![Box::new(AlltoallSource { bruck: false }), Box::new(AlltoallSource { bruck: true })]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    /// Block rank `s` sends to rank `d`: a recognizable function of both.
    fn block_for(s: usize, d: usize, block: usize) -> Vec<u8> {
        (0..block).map(|i| ((s * 13 + d * 7 + i) % 251) as u8).collect()
    }

    fn run(which: u8, size: usize, block: usize) -> (Vec<Vec<u8>>, mpsim::WorldTraffic) {
        let out = ThreadWorld::run(size, |comm| {
            let me = comm.rank();
            let sendbuf: Vec<u8> = (0..size).flat_map(|d| block_for(me, d, block)).collect();
            let mut recvbuf = vec![0u8; size * block];
            match which {
                0 => alltoall_pairwise(comm, &sendbuf, &mut recvbuf).unwrap(),
                1 => alltoall_bruck(comm, &sendbuf, &mut recvbuf).unwrap(),
                _ => alltoall_auto(comm, &sendbuf, &mut recvbuf).unwrap(),
            }
            recvbuf
        });
        (out.results, out.traffic)
    }

    fn check_result(bufs: &[Vec<u8>], size: usize, block: usize, label: &str) {
        for (d, buf) in bufs.iter().enumerate() {
            for s in 0..size {
                assert_eq!(
                    &buf[s * block..(s + 1) * block],
                    &block_for(s, d, block),
                    "{label}: block {s}->{d} wrong (size={size} block={block})"
                );
            }
        }
    }

    #[test]
    fn pairwise_exchanges_everything() {
        for &(size, block) in
            &[(1usize, 4usize), (2, 8), (4, 16), (8, 3), (5, 9), (10, 2), (13, 1), (6, 0)]
        {
            let (bufs, traffic) = run(0, size, block);
            check_result(&bufs, size, block, "pairwise");
            if size > 1 {
                assert_eq!(traffic.total_msgs(), (size * (size - 1)) as u64);
            }
        }
    }

    #[test]
    fn bruck_exchanges_everything() {
        for &(size, block) in
            &[(1usize, 4usize), (2, 8), (3, 5), (4, 16), (8, 3), (5, 9), (10, 2), (13, 1)]
        {
            let (bufs, traffic) = run(1, size, block);
            check_result(&bufs, size, block, "bruck");
            if size > 1 {
                assert_eq!(
                    traffic.total_msgs(),
                    (size as u64) * u64::from(mpsim::ceil_log2(size)),
                    "size={size}"
                );
            }
        }
    }

    #[test]
    fn bruck_fewer_messages_pairwise_fewer_bytes() {
        let (_, pw) = run(0, 10, 64);
        let (_, br) = run(1, 10, 64);
        assert!(br.total_msgs() < pw.total_msgs());
        assert!(br.total_bytes() > pw.total_bytes(), "Bruck pays volume for latency");
    }

    #[test]
    fn auto_picks_correctly_and_works() {
        let (bufs, _) = run(2, 9, 16); // short → Bruck
        check_result(&bufs, 9, 16, "auto-short");
        let (bufs, _) = run(2, 9, 1024); // long → pairwise
        check_result(&bufs, 9, 1024, "auto-long");
    }
}
