//! Recursive-doubling allgather — phase two of MPICH3's broadcast for
//! *medium* messages with a *power-of-two* process count (`mmsg-pof2`).
//!
//! After the binomial scatter, round `k` (mask `2^k`) has every rank exchange
//! its accumulated aligned block of `2^k` chunks with the partner `rel ^ 2^k`,
//! doubling the block each round: `log2 P` rounds, one message per rank per
//! round (`P·log2 P` transfers), each rank receiving `nbytes·(P−1)/P` bytes in
//! total.
//!
//! MPICH only selects this path when `P` is a power of two (the
//! non-power-of-two fixup rounds are never exercised by broadcast, which
//! falls back to the ring); we mirror that contract and require `is_pof2(P)`.

use mpsim::{
    absolute_rank, complete_now, is_pof2, relative_rank, split_send_recv, AsyncCommunicator,
    Communicator, Rank, Result, SyncComm, Tag,
};

use crate::chunks::ChunkLayout;
use crate::schedule::{Loc, Schedule};

/// Run the recursive-doubling allgather over a buffer that has been
/// binomial-scattered from `root`.
///
/// # Panics
///
/// Panics if `comm.size()` is not a power of two — callers (the broadcast
/// selection logic) must route non-power-of-two worlds to the ring variants.
pub fn rd_allgather(comm: &(impl Communicator + ?Sized), buf: &mut [u8], root: Rank) -> Result<()> {
    complete_now(rd_allgather_async(&SyncComm::new(comm), buf, root))
}

/// Async core of [`rd_allgather`]: the identical mask walk over any
/// [`AsyncCommunicator`] — run natively by the event executor, driven
/// through [`SyncComm`] by the blocking backends.
///
/// # Panics
///
/// Panics if `comm.size()` is not a power of two, like the sync wrapper.
pub async fn rd_allgather_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    assert!(is_pof2(size), "recursive-doubling allgather requires a power-of-two world");
    if size == 1 {
        return Ok(());
    }
    let rank = comm.rank();
    let nbytes = buf.len();
    let layout = ChunkLayout::new(nbytes, size);
    let rel = relative_rank(rank, root, size);

    // Bytes accumulated so far: our own chunk.
    let mut curr_size = layout.count(rel);
    let mut mask = 1usize;
    let mut round = 0u32;
    while mask < size {
        let partner_rel = rel ^ mask;
        let partner = absolute_rank(partner_rel, root, size);

        // Aligned block starts (in chunks) for this round.
        let send_block = (rel >> round) << round;
        let recv_block = (partner_rel >> round) << round;
        let send_start = layout.span(send_block..size).start;
        let recv_start = layout.span(recv_block..size).start;
        // Maximum the partner can hold of its block:
        let recv_capacity = layout.span_bytes(recv_block..(recv_block + mask).min(size));

        let (sbuf, rbuf) = split_send_recv(buf, send_start, curr_size, recv_start, recv_capacity)?;
        let received =
            comm.sendrecv(sbuf, partner, Tag::ALLGATHER, rbuf, partner, Tag::ALLGATHER).await?;
        curr_size += received;

        mask <<= 1;
        round += 1;
    }
    Ok(())
}

/// Append the symbolic ops of [`rd_allgather`] to `sched`.
///
/// The executed code learns each round's received length from `recv()`; the
/// emitter replays all ranks in lockstep instead, carrying the cross-rank
/// accumulation table `curr[rel]` forward one round at a time
/// (`curr' [rel] = curr[rel] + curr[rel ^ mask]`).
pub(crate) fn append_rd_ops(sched: &mut Schedule, root: Rank) {
    let size = sched.p;
    assert!(is_pof2(size), "recursive-doubling allgather requires a power-of-two world");
    if size == 1 {
        return;
    }
    let layout = ChunkLayout::new(sched.ranks[0].buf_len, size);
    let mut curr: Vec<usize> = (0..size).map(|rel| layout.count(rel)).collect();
    let mut mask = 1usize;
    let mut round = 0u32;
    while mask < size {
        for rank in 0..size {
            let rel = relative_rank(rank, root, size);
            let partner_rel = rel ^ mask;
            let partner = absolute_rank(partner_rel, root, size);
            let send_block = (rel >> round) << round;
            let recv_block = (partner_rel >> round) << round;
            let send_start = layout.span(send_block..size).start;
            let recv_start = layout.span(recv_block..size).start;
            let recv_capacity = layout.span_bytes(recv_block..(recv_block + mask).min(size));
            sched.ranks[rank].sendrecv(
                "rd",
                partner,
                Tag::ALLGATHER,
                Loc::Buf(send_start..send_start + curr[rel]),
                partner,
                Tag::ALLGATHER,
                Loc::Buf(recv_start..recv_start + recv_capacity),
            );
        }
        curr = (0..size).map(|rel| curr[rel] + curr[rel ^ mask]).collect();
        mask <<= 1;
        round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::binomial_scatter;
    use mpsim::ThreadWorld;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 151 + 11) as u8).collect()
    }

    fn run(size: usize, nbytes: usize, root: Rank) -> mpsim::WorldTraffic {
        let src = pattern(nbytes);
        let out = ThreadWorld::run(size, |comm| {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            binomial_scatter(comm, &mut buf, root).unwrap();
            rd_allgather(comm, &mut buf, root).unwrap();
            assert_eq!(buf, src, "rank {} incomplete", comm.rank());
        });
        out.traffic
    }

    #[test]
    fn completes_broadcast_pof2() {
        for &(size, nbytes, root) in &[
            (2usize, 16usize, 0usize),
            (4, 64, 1),
            (8, 100, 0),
            (8, 97, 5),
            (16, 12288, 3),
            (32, 1000, 31),
            (1, 8, 0),
        ] {
            run(size, nbytes, root);
        }
    }

    #[test]
    fn handles_tiny_and_zero_messages() {
        run(8, 3, 0); // empty trailing chunks
        run(8, 0, 2);
        run(16, 15, 0);
    }

    #[test]
    fn transfer_count_is_p_log2_p() {
        for size in [2usize, 4, 8, 16] {
            let t = run(size, size * 16, 0);
            let scatter = (size - 1) as u64;
            let expected = (size as u64) * u64::from(size.trailing_zeros());
            assert_eq!(t.total_msgs() - scatter, expected, "size={size}");
        }
    }

    #[test]
    fn allgather_bytes_per_rank() {
        // Each rank receives nbytes − its own chunk during the allgather.
        let (size, nbytes) = (8usize, 80usize);
        let src = pattern(nbytes);
        let out = ThreadWorld::run(size, |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            binomial_scatter(comm, &mut buf, 0).unwrap();
            let before = comm.traffic().bytes_recvd;
            rd_allgather(comm, &mut buf, 0).unwrap();
            comm.traffic().bytes_recvd - before
        });
        let layout = ChunkLayout::new(nbytes, size);
        for (rel, &got) in out.results.iter().enumerate() {
            assert_eq!(got, (nbytes - layout.count(rel)) as u64, "rel={rel}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_npof2() {
        ThreadWorld::run(6, |comm| {
            let mut buf = vec![0u8; 12];
            let _ = rd_allgather(comm, &mut buf, 0);
        });
    }
}
