//! Binomial-tree broadcast — MPICH3's short-message (`smsg`) algorithm.
//!
//! The whole buffer travels down the same binomial tree the scatter uses,
//! but undivided: `ceil(log2 P)` latency steps, `P − 1` transfers of the full
//! `nbytes`. Optimal for small messages where latency dominates; wasteful in
//! bandwidth for large ones (every transfer carries all `nbytes`), which is
//! why MPICH switches to scatter-based algorithms past 12 KiB.

use mpsim::{
    absolute_rank, complete_now, relative_rank, AsyncCommunicator, Communicator, Rank, Result,
    SyncComm, Tag,
};

use crate::schedule::{Loc, Schedule};

/// Broadcast `buf` from `root` to every rank via a binomial tree.
pub fn bcast_binomial(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    complete_now(bcast_binomial_async(&SyncComm::new(comm), buf, root))
}

/// Async core of [`bcast_binomial`]: the same tree walk over any
/// [`AsyncCommunicator`] — run natively by the event executor, driven
/// through [`SyncComm`] by the blocking backends.
///
/// The payload rides a shared envelope: the root stages `buf` into a pool
/// rental once ([`AsyncCommunicator::make_shared`]), every forward is a
/// refcount clone ([`AsyncCommunicator::send_shared_to`] over the child
/// list), and a non-root receives the envelope itself
/// ([`AsyncCommunicator::recv_owned`]) and pays exactly one copy into the
/// user buffer. Per rank that is ≤ `nbytes` copied, versus `nbytes` per
/// *hop* (sender copy-in + receiver copy-out on every level) for the copy
/// path kept in [`bcast_binomial_copy_async`]. Wire traffic is identical.
pub async fn bcast_binomial_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    let rank = comm.rank();
    let relative = relative_rank(rank, root, size);

    // Receive from parent (rank differing in our lowest set bit), taking
    // ownership of the arriving envelope instead of copying it out.
    let mut mask = 1usize;
    let mut incoming = None;
    while mask < size {
        if relative & mask != 0 {
            let src = absolute_rank(relative - mask, root, size);
            incoming = Some(comm.recv_owned(buf.len(), src, Tag::BCAST).await?);
            break;
        }
        mask <<= 1;
    }
    // The root stages its user buffer once; everyone else forwards the
    // envelope it received.
    let payload = match incoming {
        Some(env) => env,
        None => comm.make_shared(buf),
    };

    // Forward to children, farthest first — refcount clones of one rental.
    mask >>= 1;
    let mut children = Vec::new();
    while mask > 0 {
        if relative + mask < size {
            children.push(absolute_rank(relative + mask, root, size));
        }
        mask >>= 1;
    }
    comm.send_shared_to(&children, &payload, Tag::BCAST).await?;

    if rank != root {
        // The single final copy this rank pays.
        buf[..payload.len()].copy_from_slice(&payload);
        comm.note_copy(payload.len());
    }
    Ok(())
}

/// The pre-zero-copy binomial walk: plain `send`/`recv`, so every hop pays
/// a sender-side copy-in and a receiver-side copy-out. Kept as the
/// differential baseline for the `zero_copy` bench group and the
/// bytes-copied regression tests.
pub fn bcast_binomial_copy(
    comm: &(impl Communicator + ?Sized),
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    complete_now(bcast_binomial_copy_async(&SyncComm::new(comm), buf, root))
}

/// Async core of [`bcast_binomial_copy`]; see that function.
pub async fn bcast_binomial_copy_async<C: AsyncCommunicator + ?Sized>(
    comm: &C,
    buf: &mut [u8],
    root: Rank,
) -> Result<()> {
    comm.check_rank(root)?;
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    let relative = relative_rank(comm.rank(), root, size);

    let mut mask = 1usize;
    while mask < size {
        if relative & mask != 0 {
            let src = absolute_rank(relative - mask, root, size);
            comm.recv(buf, src, Tag::BCAST).await?;
            break;
        }
        mask <<= 1;
    }

    mask >>= 1;
    while mask > 0 {
        if relative + mask < size {
            let dst = absolute_rank(relative + mask, root, size);
            comm.send(buf, dst, Tag::BCAST).await?;
        }
        mask >>= 1;
    }
    Ok(())
}

/// Append the symbolic ops of [`bcast_binomial`] to `sched` — a line-by-line
/// mirror of the executed tree walk (same masks, same guards), with the whole
/// tracked buffer as payload of every hop.
pub(crate) fn append_binomial_ops(sched: &mut Schedule, root: Rank) {
    let size = sched.p;
    if size == 1 {
        return;
    }
    let nbytes = sched.ranks[0].buf_len;
    for rank in 0..size {
        let relative = relative_rank(rank, root, size);
        let mut mask = 1usize;
        while mask < size {
            if relative & mask != 0 {
                let src = absolute_rank(relative - mask, root, size);
                sched.ranks[rank].recv("binomial", src, Tag::BCAST, Loc::Buf(0..nbytes));
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if relative + mask < size {
                let dst = absolute_rank(relative + mask, root, size);
                sched.ranks[rank].send("binomial", dst, Tag::BCAST, Loc::Buf(0..nbytes));
            }
            mask >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsim::ThreadWorld;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 89 + 3) as u8).collect()
    }

    fn run(size: usize, nbytes: usize, root: Rank) -> mpsim::WorldTraffic {
        let src = pattern(nbytes);
        let out = ThreadWorld::run(size, |comm| {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            bcast_binomial(comm, &mut buf, root).unwrap();
            assert_eq!(buf, src, "rank {}", comm.rank());
        });
        out.traffic
    }

    #[test]
    fn completes_for_many_shapes() {
        for &(size, nbytes, root) in &[
            (2usize, 16usize, 0usize),
            (8, 100, 0),
            (8, 100, 5),
            (10, 1, 9),
            (13, 12288, 6),
            (1, 8, 0),
            (7, 0, 3),
        ] {
            run(size, nbytes, root);
        }
    }

    #[test]
    fn exactly_p_minus_1_full_size_transfers() {
        for &(size, nbytes) in &[(8usize, 64usize), (10, 100), (13, 33)] {
            let t = run(size, nbytes, 0);
            assert_eq!(t.total_msgs(), (size - 1) as u64);
            assert_eq!(t.total_bytes(), ((size - 1) * nbytes) as u64);
        }
    }

    #[test]
    fn root_sends_ceil_log2_p_messages() {
        // The root has one child per bit level: ceil(log2 P) sends.
        for size in 2..40usize {
            let t = run(size, 8, 0);
            assert_eq!(t.per_rank[0].msgs_sent, u64::from(mpsim::ceil_log2(size)), "size={size}");
            assert_eq!(t.per_rank[0].msgs_recvd, 0);
        }
    }

    #[test]
    fn every_non_root_receives_exactly_once() {
        let t = run(11, 64, 4);
        for (rank, st) in t.per_rank.iter().enumerate() {
            assert_eq!(st.msgs_recvd, u64::from(rank != 4), "rank={rank}");
        }
    }
}
