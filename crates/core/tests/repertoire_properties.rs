//! Property-based tests for the wider collective repertoire: allgather
//! (ring/RD/Bruck), alltoall (pairwise/Bruck), scatter/gather (+v),
//! reductions, and the pipeline broadcast — arbitrary world sizes, block
//! sizes, roots and payloads on the real threaded runtime, randomized by
//! the in-tree `testkit` harness.

use bcast_core::allgather::{allgather_bruck, allgather_rd, allgather_ring};
use bcast_core::alltoall::{alltoall_bruck, alltoall_pairwise};
use bcast_core::pipeline::{bcast_pipeline, pipeline_msgs};
use bcast_core::reduce::{allreduce_rabenseifner, allreduce_rd, reduce_binomial};
use bcast_core::varcount::{
    allgatherv_ring, gatherv_binomial, packed_displs, scatterv_linear, total,
};
use mpsim::{Communicator, ThreadWorld};
use testkit::prop::{self, Config};

#[test]
fn allgather_variants_deliver_identical_results() {
    prop::check(
        "allgather_variants_deliver_identical_results",
        Config::cases(40),
        &(prop::usize_range(1..16), prop::usize_range(0..200), prop::any_u8()),
        |&(size, block, seed)| {
            let out = ThreadWorld::run(size, |comm| {
                let mine: Vec<u8> =
                    (0..block).map(|i| (comm.rank() as u8) ^ (i as u8) ^ seed).collect();
                let mut ring = vec![0u8; block * comm.size()];
                allgather_ring(comm, &mine, &mut ring).unwrap();
                let mut bruck = vec![0u8; block * comm.size()];
                allgather_bruck(comm, &mine, &mut bruck).unwrap();
                assert_eq!(ring, bruck);
                if comm.size().is_power_of_two() {
                    let mut rd = vec![0u8; block * comm.size()];
                    allgather_rd(comm, &mine, &mut rd).unwrap();
                    assert_eq!(ring, rd);
                }
                ring
            });
            // every rank identical, blocks in rank order
            for buf in &out.results {
                if buf != &out.results[0] {
                    return Err("ranks disagree".into());
                }
            }
            for (r, chunk) in out.results[0].chunks(block.max(1)).enumerate().take(size) {
                if block > 0
                    && !chunk.iter().enumerate().all(|(i, &b)| b == (r as u8) ^ (i as u8) ^ seed)
                {
                    return Err(format!("block of rank {r} corrupted"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn alltoall_variants_agree() {
    prop::check(
        "alltoall_variants_agree",
        Config::cases(40),
        &(prop::usize_range(1..14), prop::usize_range(0..120)),
        |&(size, block)| {
            ThreadWorld::run(size, |comm| {
                let me = comm.rank() as u8;
                let sendbuf: Vec<u8> = (0..comm.size())
                    .flat_map(|d| (0..block).map(move |i| me ^ (d as u8) ^ (i as u8)))
                    .collect();
                let mut a = vec![0u8; sendbuf.len()];
                alltoall_pairwise(comm, &sendbuf, &mut a).unwrap();
                let mut b = vec![0u8; sendbuf.len()];
                alltoall_bruck(comm, &sendbuf, &mut b).unwrap();
                assert_eq!(a, b);
                // block from rank s carries s ^ me ^ i
                for (s, chunk) in a.chunks(block.max(1)).enumerate().take(comm.size()) {
                    if block > 0 {
                        assert!(chunk
                            .iter()
                            .enumerate()
                            .all(|(i, &v)| v == (s as u8) ^ me ^ (i as u8)));
                    }
                }
            });
            Ok(())
        },
    );
}

#[test]
fn reductions_sum_correctly() {
    prop::check(
        "reductions_sum_correctly",
        Config::cases(40),
        &(prop::usize_range(1..14), prop::usize_range(0..100), prop::any_u64()),
        |&(size, len, root_pick)| {
            let root = (root_pick as usize) % size;
            let out = ThreadWorld::run(size, |comm| {
                let mine: Vec<u64> =
                    (0..len).map(|i| ((comm.rank() + 1) * (i + 1)) as u64).collect();
                let mut reduced = if comm.rank() == root { vec![0u64; len] } else { vec![] };
                reduce_binomial(comm, &mine, &mut reduced, |a, b| a + b, root).unwrap();
                let mut all = mine.clone();
                allreduce_rd(comm, &mut all, |a, b| a + b).unwrap();
                let mut raben = mine;
                allreduce_rabenseifner(comm, &mut raben, |a, b| a + b).unwrap();
                assert_eq!(all, raben);
                (reduced, all)
            });
            let triangle = (size * (size + 1) / 2) as u64;
            let want: Vec<u64> = (0..len).map(|i| triangle * (i + 1) as u64).collect();
            if out.results[root].0 != want {
                return Err("reduce_binomial wrong at root".into());
            }
            for (_, all) in &out.results {
                if all != &want {
                    return Err("allreduce diverged".into());
                }
            }
            Ok(())
        },
    );
}

#[test]
fn varcount_round_trip() {
    prop::check(
        "varcount_round_trip",
        Config::cases(40),
        &(prop::usize_range(1..12), prop::any_u64(), prop::any_u64()),
        |&(size, seed, root_pick)| {
            let root = (root_pick as usize) % size;
            let counts: Vec<usize> =
                (0..size).map(|r| ((seed >> (r % 8)) as usize + r) % 23).collect();
            let displs = packed_displs(&counts);
            let n = total(&counts);
            let payload: Vec<u8> = (0..n).map(|i| (i as u8).wrapping_mul(31)).collect();
            let payload2 = payload.clone();
            let counts2 = counts.clone();
            let displs2 = displs.clone();
            let out = ThreadWorld::run(size, move |comm| {
                let me = comm.rank();
                let sendbuf = if me == root { payload2.clone() } else { vec![] };
                let mut mine = vec![0u8; counts2[me]];
                scatterv_linear(comm, &sendbuf, &mut mine, &counts2, &displs2, root).unwrap();
                // allgatherv reassembles the full payload everywhere
                let mut assembled = vec![0u8; n];
                allgatherv_ring(comm, &mine, &mut assembled, &counts2, &displs2).unwrap();
                // gatherv brings it back to the root too
                let mut back = if me == root { vec![0u8; n] } else { vec![] };
                gatherv_binomial(comm, &mine, &mut back, &counts2, &displs2, root).unwrap();
                (assembled, back)
            });
            for (rank, (assembled, _)) in out.results.iter().enumerate() {
                if assembled != &payload {
                    return Err(format!("rank {rank} reassembled wrong payload"));
                }
            }
            if out.results[root].1 != payload {
                return Err("gatherv returned wrong payload at root".into());
            }
            Ok(())
        },
    );
}

#[test]
fn pipeline_bcast_any_segment() {
    prop::check(
        "pipeline_bcast_any_segment",
        Config::cases(40),
        &(
            prop::usize_range(1..12),
            prop::usize_range(0..800),
            prop::usize_range(0..900),
            prop::any_u64(),
        ),
        |&(size, nbytes, segment, root_pick)| {
            let root = (root_pick as usize) % size;
            let src = bcast_core::verify::pattern(nbytes, 91);
            let src2 = src.clone();
            let out = ThreadWorld::run(size, move |comm| {
                let mut buf = if comm.rank() == root { src2.clone() } else { vec![0u8; nbytes] };
                bcast_pipeline(comm, &mut buf, root, segment).unwrap();
                buf
            });
            for buf in &out.results {
                if buf != &src {
                    return Err("pipeline bcast diverged".into());
                }
            }
            let want = pipeline_msgs(nbytes, segment, size);
            if out.traffic.total_msgs() != want {
                return Err(format!(
                    "msgs: measured {} != modelled {want}",
                    out.traffic.total_msgs()
                ));
            }
            Ok(())
        },
    );
}
