//! Property-based tests of the broadcast algorithms and their invariants.
//!
//! These drive the real threaded runtime with randomized world sizes, message
//! sizes, roots and payloads, checking the invariants DESIGN.md §5 calls out:
//! correctness for arbitrary shapes, traffic equal to the analytic model,
//! tuned ≤ native, schedule consistency.
//!
//! Randomization comes from the in-tree `testkit` harness; a failing
//! property prints a `TESTKIT_SEED` that replays the exact failing case.

use bcast_core::bcast::{bcast_with, Algorithm};
use bcast_core::ring_tuned::{receives_at, sends_at, step_flag, Endpoint};
use bcast_core::scatter::owned_chunks;
use bcast_core::traffic::{bcast_volume, tuned_ring_rank_msgs};
use mpsim::{ring_right, ThreadWorld};
use testkit::prop::{self, Config};

/// Run `algorithm` broadcasting `payload` from `root` over `size` ranks on
/// real threads; assert every rank converges to the payload; return traffic.
fn run_and_check(
    algorithm: Algorithm,
    size: usize,
    payload: &[u8],
    root: usize,
) -> mpsim::WorldTraffic {
    let out = ThreadWorld::run(size, |comm| {
        use mpsim::Communicator;
        let mut buf = if comm.rank() == root { payload.to_vec() } else { vec![0u8; payload.len()] };
        bcast_with(comm, &mut buf, root, algorithm).unwrap();
        assert_eq!(buf, payload, "rank {} diverged", comm.rank());
    });
    assert!(out.traffic.is_balanced(), "unbalanced send/recv totals");
    out.traffic
}

/// Shared body: broadcast correctness + modelled traffic for one algorithm.
fn check_bcast_matches_model(
    algorithm: Algorithm,
    size: usize,
    payload: &[u8],
    root_pick: u64,
) -> prop::PropResult {
    let root = (root_pick as usize) % size;
    let traffic = run_and_check(algorithm, size, payload, root);
    let model = bcast_volume(algorithm, payload.len(), size);
    if traffic.total_msgs() != model.msgs {
        return Err(format!("msgs: measured {} != modelled {}", traffic.total_msgs(), model.msgs));
    }
    if traffic.total_bytes() != model.bytes {
        return Err(format!(
            "bytes: measured {} != modelled {}",
            traffic.total_bytes(),
            model.bytes
        ));
    }
    Ok(())
}

/// The paper's algorithm broadcasts correctly for arbitrary shapes and
/// moves exactly the modelled number of messages and bytes.
#[test]
fn tuned_bcast_correct_and_modelled() {
    prop::check(
        "tuned_bcast_correct_and_modelled",
        Config::cases(48),
        &(prop::usize_range(1..28), prop::vec_of(prop::any_u8(), 0..1500), prop::any_u64()),
        |(size, payload, root_pick)| {
            check_bcast_matches_model(Algorithm::ScatterRingTuned, *size, payload, *root_pick)
        },
    );
}

/// Same for the native baseline.
#[test]
fn native_bcast_correct_and_modelled() {
    prop::check(
        "native_bcast_correct_and_modelled",
        Config::cases(48),
        &(prop::usize_range(1..28), prop::vec_of(prop::any_u8(), 0..1500), prop::any_u64()),
        |(size, payload, root_pick)| {
            check_bcast_matches_model(Algorithm::ScatterRingNative, *size, payload, *root_pick)
        },
    );
}

/// Binomial-tree broadcast is correct and moves (P−1)·nbytes.
#[test]
fn binomial_bcast_correct_and_modelled() {
    prop::check(
        "binomial_bcast_correct_and_modelled",
        Config::cases(48),
        &(prop::usize_range(1..28), prop::vec_of(prop::any_u8(), 0..1500), prop::any_u64()),
        |(size, payload, root_pick)| {
            check_bcast_matches_model(Algorithm::Binomial, *size, payload, *root_pick)
        },
    );
}

/// Recursive-doubling path on power-of-two worlds.
#[test]
fn rd_bcast_correct_and_modelled() {
    prop::check(
        "rd_bcast_correct_and_modelled",
        Config::cases(48),
        &(prop::u32_range(0..5), prop::vec_of(prop::any_u8(), 0..1500), prop::any_u64()),
        |(log_size, payload, root_pick)| {
            let size = 1usize << *log_size;
            check_bcast_matches_model(Algorithm::ScatterRdAllgather, size, payload, *root_pick)
        },
    );
}

/// Regression cases recorded by the previous proptest setup (the
/// `properties.proptest-regressions` file): keep replaying them verbatim.
#[test]
fn regression_tuned_bcast_size12() {
    // cc b5607411…: shrinks to size = 12, 97-byte payload, root_pick below.
    let payload: Vec<u8> = vec![
        153, 86, 191, 71, 87, 16, 93, 187, 146, 129, 73, 21, 240, 227, 81, 180, 96, 17, 140, 216,
        213, 209, 82, 233, 213, 33, 107, 233, 36, 83, 149, 225, 222, 90, 32, 181, 116, 57, 218,
        106, 14, 21, 152, 167, 60, 239, 146, 94, 198, 94, 154, 127, 80, 152, 183, 25, 43, 200, 255,
        244, 194, 179, 151, 208, 89, 220, 110, 206, 26, 175, 200, 48, 192, 85, 43, 44, 105, 232,
        216, 203, 2, 171, 153, 83, 107, 87, 232, 254, 179, 99, 146, 125, 86, 220, 177, 2, 68,
    ];
    check_bcast_matches_model(Algorithm::ScatterRingTuned, 12, &payload, 17440753696281381532)
        .unwrap();
}

#[test]
fn regression_rd_bcast_log_size4() {
    // cc 1c32e9ad…: shrinks to log_size = 4, 33-byte payload, root_pick below.
    let payload: Vec<u8> = vec![
        0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 165, 163, 183, 131, 73, 132, 45, 225, 146,
        127, 235, 105, 217, 133, 185, 1, 37,
    ];
    check_bcast_matches_model(
        Algorithm::ScatterRdAllgather,
        1usize << 4,
        &payload,
        9648131472712156052,
    )
    .unwrap();
}

/// The tuned ring never moves more messages or bytes than the native one,
/// and strictly fewer messages for any world of 3+ ranks.
#[test]
fn tuned_dominates_native() {
    prop::check(
        "tuned_dominates_native",
        Config::cases(48),
        &(prop::usize_range(1..400), prop::usize_range(0..100_000)),
        |&(size, nbytes)| {
            let native = bcast_volume(Algorithm::ScatterRingNative, nbytes, size);
            let tuned = bcast_volume(Algorithm::ScatterRingTuned, nbytes, size);
            if tuned.msgs > native.msgs {
                return Err(format!("more msgs: {} > {}", tuned.msgs, native.msgs));
            }
            if tuned.bytes > native.bytes {
                return Err(format!("more bytes: {} > {}", tuned.bytes, native.bytes));
            }
            if size >= 3 && tuned.msgs >= native.msgs {
                return Err(format!("no saving at size={size}"));
            }
            Ok(())
        },
    );
}

/// Schedule consistency for arbitrary world sizes: every ring edge agrees
/// step-by-step on whether a message flows, and the per-rank analytic
/// counts match the schedule predicates.
#[test]
fn schedule_edges_consistent() {
    prop::check(
        "schedule_edges_consistent",
        Config::cases(48),
        &prop::usize_range(2..600),
        |&size| {
            for rel in 0..size {
                let (s_step, s_flag) = step_flag(rel, size);
                let right = ring_right(rel, size);
                let (r_step, r_flag) = step_flag(right, size);
                let mut sends = 0u64;
                let mut recvs = 0u64;
                for i in 1..size {
                    let s = sends_at(s_step, s_flag, size, i);
                    let r = receives_at(r_step, r_flag, size, i);
                    if s != r {
                        return Err(format!("edge {rel}->{right} step {i}: send {s} recv {r}"));
                    }
                    sends += u64::from(s);
                    recvs += u64::from(receives_at(s_step, s_flag, size, i));
                }
                if (sends, recvs) != tuned_ring_rank_msgs(rel, size) {
                    return Err(format!(
                        "rank counts mismatch at rel={rel}: ({sends}, {recvs}) != {:?}",
                        tuned_ring_rank_msgs(rel, size)
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Send-only ranks' step equals their scatter ownership; receive-only
/// ranks receive at every step (they own only chunk `rel`... except the
/// odd-size `size−2` corner where step=1 keeps them in sendrecv mode
/// throughout — covered by the edge-consistency property).
#[test]
fn step_matches_ownership() {
    prop::check("step_matches_ownership", Config::cases(48), &prop::usize_range(2..600), |&size| {
        for rel in 0..size {
            let (step, flag) = step_flag(rel, size);
            let expect = match flag {
                Endpoint::SendOnly => owned_chunks(rel, size),
                Endpoint::RecvOnly => owned_chunks(ring_right(rel, size), size),
            };
            if step != expect {
                return Err(format!("rel={rel} size={size}: step {step} != {expect}"));
            }
        }
        Ok(())
    });
}

/// Ownership intervals from the closed form tile the ring exactly when
/// following the scatter-tree structure: every rank's interval stays in
/// range and the per-rank receive count in the tuned ring is exactly
/// `size − owned_chunks(rel)` except for the RecvOnly corner ranks that
/// re-receive nothing anyway.
#[test]
fn tuned_receives_equal_missing_chunks() {
    prop::check(
        "tuned_receives_equal_missing_chunks",
        Config::cases(48),
        &prop::usize_range(2..300),
        |&size| {
            for rel in 0..size {
                let (_, recvs) = tuned_ring_rank_msgs(rel, size);
                let expect = (size - owned_chunks(rel, size)) as u64;
                if recvs != expect {
                    return Err(format!("rel={rel} size={size}: recvs {recvs} != {expect}"));
                }
            }
            Ok(())
        },
    );
}

/// Exhaustive (non-random) sweep over small worlds: all sizes, all roots,
/// awkward message sizes around chunk boundaries.
#[test]
fn exhaustive_small_worlds() {
    for size in 1..=12usize {
        for root in [0, size / 2, size - 1] {
            for nbytes in [0usize, 1, size - 1, size, size + 1, 3 * size + 1, 64] {
                let payload: Vec<u8> = (0..nbytes).map(|i| (i ^ size ^ root) as u8).collect();
                for algorithm in
                    [Algorithm::Binomial, Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned]
                {
                    run_and_check(algorithm, size, &payload, root);
                }
                if size.is_power_of_two() {
                    run_and_check(Algorithm::ScatterRdAllgather, size, &payload, root);
                }
            }
        }
    }
}
