//! Property-based tests of the broadcast algorithms and their invariants.
//!
//! These drive the real threaded runtime with randomized world sizes, message
//! sizes, roots and payloads, checking the invariants DESIGN.md §5 calls out:
//! correctness for arbitrary shapes, traffic equal to the analytic model,
//! tuned ≤ native, schedule consistency.

use bcast_core::bcast::{bcast_with, Algorithm};
use bcast_core::ring_tuned::{receives_at, sends_at, step_flag, Endpoint};
use bcast_core::scatter::owned_chunks;
use bcast_core::traffic::{bcast_volume, tuned_ring_rank_msgs};
use mpsim::{ring_right, ThreadWorld};
use proptest::prelude::*;

/// Run `algorithm` broadcasting `payload` from `root` over `size` ranks on
/// real threads; assert every rank converges to the payload; return traffic.
fn run_and_check(
    algorithm: Algorithm,
    size: usize,
    payload: &[u8],
    root: usize,
) -> mpsim::WorldTraffic {
    let out = ThreadWorld::run(size, |comm| {
        use mpsim::Communicator;
        let mut buf =
            if comm.rank() == root { payload.to_vec() } else { vec![0u8; payload.len()] };
        bcast_with(comm, &mut buf, root, algorithm).unwrap();
        assert_eq!(buf, payload, "rank {} diverged", comm.rank());
    });
    assert!(out.traffic.is_balanced(), "unbalanced send/recv totals");
    out.traffic
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's algorithm broadcasts correctly for arbitrary shapes and
    /// moves exactly the modelled number of messages and bytes.
    #[test]
    fn tuned_bcast_correct_and_modelled(
        size in 1usize..28,
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
        root_pick in any::<u64>(),
    ) {
        let root = (root_pick as usize) % size;
        let traffic = run_and_check(Algorithm::ScatterRingTuned, size, &payload, root);
        let model = bcast_volume(Algorithm::ScatterRingTuned, payload.len(), size);
        prop_assert_eq!(traffic.total_msgs(), model.msgs);
        prop_assert_eq!(traffic.total_bytes(), model.bytes);
    }

    /// Same for the native baseline.
    #[test]
    fn native_bcast_correct_and_modelled(
        size in 1usize..28,
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
        root_pick in any::<u64>(),
    ) {
        let root = (root_pick as usize) % size;
        let traffic = run_and_check(Algorithm::ScatterRingNative, size, &payload, root);
        let model = bcast_volume(Algorithm::ScatterRingNative, payload.len(), size);
        prop_assert_eq!(traffic.total_msgs(), model.msgs);
        prop_assert_eq!(traffic.total_bytes(), model.bytes);
    }

    /// Binomial-tree broadcast is correct and moves (P−1)·nbytes.
    #[test]
    fn binomial_bcast_correct_and_modelled(
        size in 1usize..28,
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
        root_pick in any::<u64>(),
    ) {
        let root = (root_pick as usize) % size;
        let traffic = run_and_check(Algorithm::Binomial, size, &payload, root);
        let model = bcast_volume(Algorithm::Binomial, payload.len(), size);
        prop_assert_eq!(traffic.total_msgs(), model.msgs);
        prop_assert_eq!(traffic.total_bytes(), model.bytes);
    }

    /// Recursive-doubling path on power-of-two worlds.
    #[test]
    fn rd_bcast_correct_and_modelled(
        log_size in 0u32..5,
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
        root_pick in any::<u64>(),
    ) {
        let size = 1usize << log_size;
        let root = (root_pick as usize) % size;
        let traffic = run_and_check(Algorithm::ScatterRdAllgather, size, &payload, root);
        let model = bcast_volume(Algorithm::ScatterRdAllgather, payload.len(), size);
        prop_assert_eq!(traffic.total_msgs(), model.msgs);
        prop_assert_eq!(traffic.total_bytes(), model.bytes);
    }

    /// The tuned ring never moves more messages or bytes than the native one,
    /// and strictly fewer messages for any world of 3+ ranks.
    #[test]
    fn tuned_dominates_native(size in 1usize..400, nbytes in 0usize..100_000) {
        let native = bcast_volume(Algorithm::ScatterRingNative, nbytes, size);
        let tuned = bcast_volume(Algorithm::ScatterRingTuned, nbytes, size);
        prop_assert!(tuned.msgs <= native.msgs);
        prop_assert!(tuned.bytes <= native.bytes);
        if size >= 3 {
            prop_assert!(tuned.msgs < native.msgs, "no saving at size={size}");
        }
    }

    /// Schedule consistency for arbitrary world sizes: every ring edge agrees
    /// step-by-step on whether a message flows, and the per-rank analytic
    /// counts match the schedule predicates.
    #[test]
    fn schedule_edges_consistent(size in 2usize..600) {
        for rel in 0..size {
            let (s_step, s_flag) = step_flag(rel, size);
            let right = ring_right(rel, size);
            let (r_step, r_flag) = step_flag(right, size);
            let mut sends = 0u64;
            let mut recvs = 0u64;
            for i in 1..size {
                let s = sends_at(s_step, s_flag, size, i);
                let r = receives_at(r_step, r_flag, size, i);
                prop_assert_eq!(s, r, "edge {}->{} step {}", rel, right, i);
                sends += u64::from(s);
                recvs += u64::from(receives_at(s_step, s_flag, size, i));
            }
            prop_assert_eq!((sends, recvs), tuned_ring_rank_msgs(rel, size));
        }
    }

    /// Send-only ranks' step equals their scatter ownership; receive-only
    /// ranks receive at every step (they own only chunk `rel`... except the
    /// odd-size `size−2` corner where step=1 keeps them in sendrecv mode
    /// throughout — covered by the edge-consistency property).
    #[test]
    fn step_matches_ownership(size in 2usize..600) {
        for rel in 0..size {
            let (step, flag) = step_flag(rel, size);
            match flag {
                Endpoint::SendOnly => prop_assert_eq!(step, owned_chunks(rel, size)),
                Endpoint::RecvOnly => {
                    prop_assert_eq!(step, owned_chunks(ring_right(rel, size), size))
                }
            }
        }
    }

    /// Ownership intervals from the closed form tile the ring exactly when
    /// following the scatter-tree structure: for every chunk c there is at
    /// least one non-root owner iff c ≠ 0... simpler: every rank's interval
    /// stays in range and the per-rank receive count in the tuned ring is
    /// exactly `size − owned_chunks(rel)` except for the RecvOnly corner
    /// ranks that re-receive nothing anyway.
    #[test]
    fn tuned_receives_equal_missing_chunks(size in 2usize..300) {
        for rel in 0..size {
            let (_, recvs) = tuned_ring_rank_msgs(rel, size);
            prop_assert_eq!(
                recvs,
                (size - owned_chunks(rel, size)) as u64,
                "rel={} size={}", rel, size
            );
        }
    }
}

/// Exhaustive (non-random) sweep over small worlds: all sizes, all roots,
/// awkward message sizes around chunk boundaries.
#[test]
fn exhaustive_small_worlds() {
    for size in 1..=12usize {
        for root in [0, size / 2, size - 1] {
            for nbytes in [0usize, 1, size - 1, size, size + 1, 3 * size + 1, 64] {
                let payload: Vec<u8> = (0..nbytes).map(|i| (i ^ size ^ root) as u8).collect();
                for algorithm in [
                    Algorithm::Binomial,
                    Algorithm::ScatterRingNative,
                    Algorithm::ScatterRingTuned,
                ] {
                    run_and_check(algorithm, size, &payload, root);
                }
                if size.is_power_of_two() {
                    run_and_check(Algorithm::ScatterRdAllgather, size, &payload, root);
                }
            }
        }
    }
}
