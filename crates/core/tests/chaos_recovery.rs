//! Chaos sweep: the self-healing broadcast under seeded drop, duplication,
//! and crash faults, at P ∈ {4, 8, 10, 16}, plus the cross-executor
//! acceptance scenario (one non-root rank crashing mid-ring at P = 8 must
//! leave all 7 survivors with the payload, identically on the threaded
//! runtime and the simulator).
//!
//! Every fault decision comes from a [`FaultPlan`] seeded via
//! `TESTKIT_SEED` (or a fixed default), so a failing run replays
//! bit-identically: same seed → same drops, same crash point, same
//! survivor set.
//!
//! Stacking follows the fault model's division of labor: message loss and
//! duplication between *live* ranks are masked by [`ReliableComm`]
//! (`bounded_sendrecv` tells the recovery layer the pump self-bounds);
//! crashes are healed by `self_healing_bcast` directly over the faulty
//! communicator.

use std::time::Duration;

use bcast_core::{self_healing_bcast, RecoveryConfig};
use mpsim::{CommError, Communicator, Rank, ReliableComm, RetryConfig, ThreadWorld};
use netsim::{FaultPlan, FaultyComm, LinkFaults, NetworkModel, Placement, SimWorld};

const PS: [usize; 4] = [4, 8, 10, 16];

/// `TESTKIT_SEED` (decimal or 0x-hex) when set, a fixed default otherwise.
fn battery_seed() -> u64 {
    let Ok(raw) = std::env::var("TESTKIT_SEED") else {
        return 0xC4A0_5BAD_5EED_0002;
    };
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("TESTKIT_SEED={raw:?} is not a decimal or 0x-hex u64"))
}

fn pattern(n: usize, salt: u64) -> Vec<u8> {
    (0..n).map(|i| (i as u64).wrapping_mul(131).wrapping_add(salt) as u8).collect()
}

fn quick_retry() -> RetryConfig {
    RetryConfig {
        base_timeout: Duration::from_millis(5),
        max_timeout: Duration::from_millis(40),
        max_attempts: 12,
    }
}

fn recovery_cfg(bounded_sendrecv: bool) -> RecoveryConfig {
    RecoveryConfig { step_timeout: Duration::from_millis(60), max_epochs: 4, bounded_sendrecv }
}

/// Drop / duplication sweep: `ReliableComm` over `FaultyComm`, healed
/// broadcast on top. No rank dies, so every rank must finish in agreement
/// with the full world as survivors and the exact payload.
fn lossy_sweep(faults: LinkFaults, seed_salt: u64) {
    let seed = battery_seed() ^ seed_salt;
    for p in PS {
        let n = 64 * p + 13;
        let src = pattern(n, seed);
        let root = p / 3;
        let out = ThreadWorld::run(p, {
            let src = src.clone();
            move |comm| {
                let plan = FaultPlan::new(seed ^ p as u64).with_default(faults);
                let faulty = FaultyComm::new(comm, plan);
                let rel = ReliableComm::with_config(&faulty, quick_retry());
                let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; n] };
                let healed = self_healing_bcast(&rel, &mut buf, root, &recovery_cfg(true))
                    .unwrap_or_else(|e| panic!("p={p} rank {}: {e:?}", comm.rank()));
                assert_eq!(buf, src, "p={p} rank {} got a corrupted payload", comm.rank());
                healed
            }
        });
        for h in &out.results {
            assert_eq!(h.survivors, (0..p).collect::<Vec<_>>(), "p={p}: no rank died here");
        }
    }
}

#[test]
fn dropped_messages_are_masked_at_every_world_size() {
    lossy_sweep(LinkFaults { drop_ppm: 100_000, dup_ppm: 0, delay_ppm: 0 }, 0xD809);
}

#[test]
fn duplicated_messages_are_masked_at_every_world_size() {
    lossy_sweep(LinkFaults { drop_ppm: 0, dup_ppm: 400_000, delay_ppm: 0 }, 0xD0B1);
}

#[test]
fn mixed_link_chaos_is_masked_at_every_world_size() {
    lossy_sweep(LinkFaults { drop_ppm: 60_000, dup_ppm: 150_000, delay_ppm: 150_000 }, 0x3417);
}

/// Crash sweep: a planned fail-stop of one non-root rank mid-broadcast at
/// every world size. The victim must learn it is the casualty; every
/// survivor must finish with the payload and the same survivor set.
#[test]
fn one_rank_crash_heals_at_every_world_size() {
    let seed = battery_seed() ^ 0xC8A5;
    for p in PS {
        let n = 48 * p + 7;
        let src = pattern(n, seed);
        let victim = p - 2; // never the root (root is 0 here)
        let out = ThreadWorld::run(p, {
            let src = src.clone();
            move |comm| {
                let plan = FaultPlan::new(seed ^ p as u64).with_crash(victim, 5);
                let faulty = FaultyComm::new(comm, plan);
                let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; n] };
                match self_healing_bcast(&faulty, &mut buf, 0, &recovery_cfg(false)) {
                    Ok(healed) => {
                        assert_eq!(buf, src, "p={p} rank {} corrupted", comm.rank());
                        Some(healed.survivors)
                    }
                    Err(CommError::PeerFailed { rank }) if rank == comm.rank() => None,
                    Err(e) => panic!("p={p} rank {}: unexpected {e:?}", comm.rank()),
                }
            }
        });
        let expected: Vec<Rank> = (0..p).filter(|&r| r != victim).collect();
        for (rank, res) in out.results.iter().enumerate() {
            if rank == victim {
                assert!(res.is_none(), "p={p}: the victim must see itself fail");
            } else {
                assert_eq!(
                    res.as_deref(),
                    Some(&expected[..]),
                    "p={p} rank {rank}: wrong survivor set"
                );
            }
        }
    }
}

/// The acceptance scenario: P = 8, the same seeded plan crashes one
/// non-root rank mid-ring on *both* executors. Both worlds must converge
/// to the identical 7-rank survivor set with correct payloads.
#[test]
fn p8_crash_replays_identically_on_both_executors() {
    const P: usize = 8;
    const VICTIM: usize = 3;
    let seed = battery_seed() ^ 0xACCE;
    let n = 1024;
    let src = pattern(n, seed);
    // crash after 5 communicator ops: past the scatter recv, inside the ring
    let plan = FaultPlan::new(seed).with_crash(VICTIM, 5);

    fn run<C: Communicator>(comm: &C, src: &[u8], plan: &FaultPlan) -> Option<Vec<Rank>> {
        let faulty = FaultyComm::new(comm, plan.clone());
        let mut buf = if comm.rank() == 0 { src.to_vec() } else { vec![0u8; src.len()] };
        match self_healing_bcast(&faulty, &mut buf, 0, &recovery_cfg(false)) {
            Ok(healed) => {
                assert_eq!(buf, src, "rank {} corrupted", comm.rank());
                Some(healed.survivors)
            }
            Err(CommError::PeerFailed { rank }) if rank == comm.rank() => None,
            Err(e) => panic!("rank {}: unexpected {e:?}", comm.rank()),
        }
    }

    let threaded = ThreadWorld::run(P, {
        let src = src.clone();
        let plan = plan.clone();
        move |comm| run(comm, &src, &plan)
    });

    let mut model = NetworkModel::uniform(50.0, 1.0);
    model.eager_threshold = usize::MAX; // GuardedComm decomposition needs eager sends
    let simulated = SimWorld::run(model, Placement::new(4), P, {
        let src = src.clone();
        let plan = plan.clone();
        move |comm| run(comm, &src, &plan)
    });

    let expected: Vec<Rank> = (0..P).filter(|&r| r != VICTIM).collect();
    for (label, results) in [("threaded", &threaded.results), ("simulated", &simulated.results)] {
        for (rank, res) in results.iter().enumerate() {
            if rank == VICTIM {
                assert!(res.is_none(), "{label}: victim must see itself fail");
            } else {
                assert_eq!(res.as_deref(), Some(&expected[..]), "{label} rank {rank}");
            }
        }
    }
    // identical failure + recovery outcome on both executors, same seed
    assert_eq!(threaded.results, simulated.results);
}
