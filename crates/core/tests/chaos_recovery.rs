//! Chaos sweep: the self-healing broadcast under seeded drop, duplication,
//! and crash faults, at P ∈ {4, 8, 10, 16}, plus the cross-executor
//! acceptance scenario (one non-root rank crashing mid-ring at P = 8 must
//! leave all 7 survivors with the payload, identically on the threaded
//! runtime and the simulator).
//!
//! Every fault decision comes from a [`FaultPlan`] seeded via
//! `TESTKIT_SEED` (or a fixed default), so a failing run replays
//! bit-identically: same seed → same drops, same crash point, same
//! survivor set.
//!
//! Stacking follows the fault model's division of labor: message loss and
//! duplication between *live* ranks are masked by [`ReliableComm`]
//! (`bounded_sendrecv` tells the recovery layer the pump self-bounds);
//! crashes are healed by `self_healing_bcast` directly over the faulty
//! communicator.

use std::time::Duration;

use bcast_core::{
    check_recovery_outcome, recovery::branch, self_healing_bcast, self_healing_rank_task,
    Algorithm, RankRun, RecoveryConfig, RecoveryDrill, RecoverySpec,
};
use mpsim::{
    CommError, Communicator, EventWorld, Rank, ReliableComm, RetryConfig, ThreadWorld, WorldTraffic,
};
use netsim::{FaultPlan, FaultyComm, LinkFaults, NetworkModel, Placement, SimWorld};

const PS: [usize; 4] = [4, 8, 10, 16];

/// `TESTKIT_SEED` (decimal or 0x-hex) when set, a fixed default otherwise.
fn battery_seed() -> u64 {
    let Ok(raw) = std::env::var("TESTKIT_SEED") else {
        return 0xC4A0_5BAD_5EED_0002;
    };
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("TESTKIT_SEED={raw:?} is not a decimal or 0x-hex u64"))
}

fn pattern(n: usize, salt: u64) -> Vec<u8> {
    (0..n).map(|i| (i as u64).wrapping_mul(131).wrapping_add(salt) as u8).collect()
}

fn quick_retry() -> RetryConfig {
    RetryConfig {
        base_timeout: Duration::from_millis(5),
        max_timeout: Duration::from_millis(40),
        max_attempts: 12,
    }
}

fn recovery_cfg(bounded_sendrecv: bool) -> RecoveryConfig {
    RecoveryConfig { step_timeout: Duration::from_millis(60), max_epochs: 4, bounded_sendrecv }
}

/// Drop / duplication sweep: `ReliableComm` over `FaultyComm`, healed
/// broadcast on top. No rank dies, so every rank must finish in agreement
/// with the full world as survivors and the exact payload.
fn lossy_sweep(faults: LinkFaults, seed_salt: u64) {
    let seed = battery_seed() ^ seed_salt;
    for p in PS {
        let n = 64 * p + 13;
        let src = pattern(n, seed);
        let root = p / 3;
        let out = ThreadWorld::run(p, {
            let src = src.clone();
            move |comm| {
                let plan = FaultPlan::new(seed ^ p as u64).with_default(faults);
                let faulty = FaultyComm::new(comm, plan);
                let rel = ReliableComm::with_config(&faulty, quick_retry());
                let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; n] };
                let healed = self_healing_bcast(&rel, &mut buf, root, &recovery_cfg(true))
                    .unwrap_or_else(|e| panic!("p={p} rank {}: {e:?}", comm.rank()));
                assert_eq!(buf, src, "p={p} rank {} got a corrupted payload", comm.rank());
                healed
            }
        });
        for h in &out.results {
            assert_eq!(h.survivors, (0..p).collect::<Vec<_>>(), "p={p}: no rank died here");
        }
    }
}

#[test]
fn dropped_messages_are_masked_at_every_world_size() {
    lossy_sweep(LinkFaults { drop_ppm: 100_000, dup_ppm: 0, delay_ppm: 0 }, 0xD809);
}

#[test]
fn duplicated_messages_are_masked_at_every_world_size() {
    lossy_sweep(LinkFaults { drop_ppm: 0, dup_ppm: 400_000, delay_ppm: 0 }, 0xD0B1);
}

#[test]
fn mixed_link_chaos_is_masked_at_every_world_size() {
    lossy_sweep(LinkFaults { drop_ppm: 60_000, dup_ppm: 150_000, delay_ppm: 150_000 }, 0x3417);
}

/// Crash sweep: a planned fail-stop of one non-root rank mid-broadcast at
/// every world size. The victim must learn it is the casualty; every
/// survivor must finish with the payload and the same survivor set.
#[test]
fn one_rank_crash_heals_at_every_world_size() {
    let seed = battery_seed() ^ 0xC8A5;
    for p in PS {
        let n = 48 * p + 7;
        let src = pattern(n, seed);
        let victim = p - 2; // never the root (root is 0 here)
        let out = ThreadWorld::run(p, {
            let src = src.clone();
            move |comm| {
                let plan = FaultPlan::new(seed ^ p as u64).with_crash(victim, 5);
                let faulty = FaultyComm::new(comm, plan);
                let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; n] };
                match self_healing_bcast(&faulty, &mut buf, 0, &recovery_cfg(false)) {
                    Ok(healed) => {
                        assert_eq!(buf, src, "p={p} rank {} corrupted", comm.rank());
                        Some(healed.survivors)
                    }
                    Err(CommError::PeerFailed { rank }) if rank == comm.rank() => None,
                    Err(e) => panic!("p={p} rank {}: unexpected {e:?}", comm.rank()),
                }
            }
        });
        let expected: Vec<Rank> = (0..p).filter(|&r| r != victim).collect();
        for (rank, res) in out.results.iter().enumerate() {
            if rank == victim {
                assert!(res.is_none(), "p={p}: the victim must see itself fail");
            } else {
                assert_eq!(
                    res.as_deref(),
                    Some(&expected[..]),
                    "p={p} rank {rank}: wrong survivor set"
                );
            }
        }
    }
}

/// The acceptance scenario: P = 8, the same seeded plan crashes one
/// non-root rank mid-ring on *both* executors. Both worlds must converge
/// to the identical 7-rank survivor set with correct payloads.
#[test]
fn p8_crash_replays_identically_on_both_executors() {
    const P: usize = 8;
    const VICTIM: usize = 3;
    let seed = battery_seed() ^ 0xACCE;
    let n = 1024;
    let src = pattern(n, seed);
    // crash after 5 communicator ops: past the scatter recv, inside the ring
    let plan = FaultPlan::new(seed).with_crash(VICTIM, 5);

    fn run<C: Communicator>(comm: &C, src: &[u8], plan: &FaultPlan) -> Option<Vec<Rank>> {
        let faulty = FaultyComm::new(comm, plan.clone());
        let mut buf = if comm.rank() == 0 { src.to_vec() } else { vec![0u8; src.len()] };
        match self_healing_bcast(&faulty, &mut buf, 0, &recovery_cfg(false)) {
            Ok(healed) => {
                assert_eq!(buf, src, "rank {} corrupted", comm.rank());
                Some(healed.survivors)
            }
            Err(CommError::PeerFailed { rank }) if rank == comm.rank() => None,
            Err(e) => panic!("rank {}: unexpected {e:?}", comm.rank()),
        }
    }

    let threaded = ThreadWorld::run(P, {
        let src = src.clone();
        let plan = plan.clone();
        move |comm| run(comm, &src, &plan)
    });

    let mut model = NetworkModel::uniform(50.0, 1.0);
    model.eager_threshold = usize::MAX; // GuardedComm decomposition needs eager sends
    let simulated = SimWorld::run(model, Placement::new(4), P, {
        let src = src.clone();
        let plan = plan.clone();
        move |comm| run(comm, &src, &plan)
    });

    let expected: Vec<Rank> = (0..P).filter(|&r| r != VICTIM).collect();
    for (label, results) in [("threaded", &threaded.results), ("simulated", &simulated.results)] {
        for (rank, res) in results.iter().enumerate() {
            if rank == VICTIM {
                assert!(res.is_none(), "{label}: victim must see itself fail");
            } else {
                assert_eq!(res.as_deref(), Some(&expected[..]), "{label} rank {rank}");
            }
        }
    }
    // identical failure + recovery outcome on both executors, same seed
    assert_eq!(threaded.results, simulated.results);
}

/// Run one seeded self-healing launch on the event executor: every rank's
/// `EventComm` is wrapped in a `FaultyComm` under the shared plan, the
/// per-rank recovery task from `bcast_core::event_launch` does the rest.
fn event_cascade(
    p: usize,
    nbytes: usize,
    root: Rank,
    algorithm: Algorithm,
    crashes: &[(Rank, u64)],
    cfg: RecoveryConfig,
    seed: u64,
) -> (Vec<RankRun>, WorldTraffic, Duration, Vec<u8>) {
    let src = pattern(nbytes, seed);
    let mut plan = FaultPlan::new(seed);
    for &(v, after) in crashes {
        plan = plan.with_crash(v, after);
    }
    let out = EventWorld::run(p, |comm| {
        let src = src.clone();
        let plan = plan.clone();
        async move {
            let faulty = FaultyComm::new(&comm, plan);
            self_healing_rank_task(&faulty, &src, root, algorithm, &cfg, &RecoveryDrill::NONE).await
        }
    });
    (out.results, out.traffic, out.elapsed, src)
}

/// EventWorld leg of the acceptance scenario, plus the three-way replay:
/// the same seeded crash plan must land on the identical per-rank outcome
/// on the threaded runtime, the latency simulator, and the event executor —
/// the fault clock counts the same operation sequence on all three.
#[test]
fn p8_crash_replays_identically_on_the_event_executor() {
    const P: usize = 8;
    const VICTIM: usize = 3;
    let seed = battery_seed() ^ 0xACCE; // same plan as the two-executor test
    let n = 1024;
    let src = pattern(n, seed);
    let plan = FaultPlan::new(seed).with_crash(VICTIM, 5);

    let threaded = ThreadWorld::run(P, {
        let src = src.clone();
        let plan = plan.clone();
        move |comm| {
            let faulty = FaultyComm::new(comm, plan.clone());
            let mut buf = if comm.rank() == 0 { src.to_vec() } else { vec![0u8; src.len()] };
            match self_healing_bcast(&faulty, &mut buf, 0, &recovery_cfg(false)) {
                Ok(healed) => {
                    assert_eq!(buf, src, "rank {} corrupted", comm.rank());
                    Some(healed.survivors)
                }
                Err(CommError::PeerFailed { rank }) if rank == comm.rank() => None,
                Err(e) => panic!("rank {}: unexpected {e:?}", comm.rank()),
            }
        }
    });

    let (event_runs, traffic, elapsed, _) = event_cascade(
        P,
        n,
        0,
        Algorithm::ScatterRingTuned,
        &[(VICTIM, 5)],
        recovery_cfg(false),
        seed,
    );
    let event: Vec<Option<Vec<Rank>>> = event_runs
        .iter()
        .enumerate()
        .map(|(rank, run)| match &run.result {
            Ok(h) => {
                assert_eq!(run.buf, src, "event rank {rank} corrupted");
                Some(h.survivors.clone())
            }
            Err(CommError::PeerFailed { rank: r }) if *r == rank => None,
            Err(e) => panic!("event rank {rank}: unexpected {e:?}"),
        })
        .collect();

    assert_eq!(threaded.results, event, "executors diverged under one seed");

    let spec = RecoverySpec {
        src: &src,
        root: 0,
        cfg: recovery_cfg(false),
        planned_victims: &[VICTIM],
        lossy_links: false,
    };
    check_recovery_outcome(&spec, &event_runs, &traffic, elapsed).unwrap();
}

/// Cascading multi-epoch recovery with a root-succession chain of depth 3:
/// the root and its first two successors die one epoch apart, the payload
/// is re-sourced down the chain `0 → 4 → 5 → 1`, and the survivors converge
/// with byte-identical payloads. Crash thresholds are tuned to the binomial
/// attempt's op counts (see each victim's comment).
#[test]
fn root_succession_chain_depth3_heals_at_p8() {
    let seed = battery_seed() ^ 0x5CC3;
    let cfg = RecoveryConfig {
        step_timeout: Duration::from_millis(60),
        max_epochs: 12, // ≥ 2·victims + 1 = 7: liveness guaranteed
        bounded_sendrecv: false,
    };
    let crashes = [
        (0usize, 1u64), // root dies after one send: only subtree {4,5,6,7} completes
        (4, 17),        // first successor dies entering epoch 1, before re-sourcing
        (5, 30),        // second successor dies entering epoch 2, before re-sourcing
    ];
    let (results, traffic, elapsed, src) =
        event_cascade(8, 512, 0, Algorithm::Binomial, &crashes, cfg, seed);

    let spec =
        RecoverySpec { src: &src, root: 0, cfg, planned_victims: &[0, 4, 5], lossy_links: false };
    check_recovery_outcome(&spec, &results, &traffic, elapsed).unwrap();

    for (rank, run) in results.iter().enumerate() {
        if [0, 4, 5].contains(&rank) {
            assert!(run.result.is_err(), "victim {rank} must see itself fail");
            assert!(run.trace.saw(branch::SELF_CRASH) || run.trace.branches == 0);
            continue;
        }
        let h = run.result.as_ref().unwrap();
        assert!(h.epochs >= 3, "rank {rank} healed in only {} epochs", h.epochs);
        assert!(
            run.trace.succession_depth >= 3,
            "rank {rank}: chain {:?} too shallow",
            run.trace.root_chain
        );
        assert_eq!(run.trace.root_chain, vec![0, 4, 5, 1], "rank {rank} followed another chain");
        assert!(run.trace.saw(branch::ROOT_SUCCESSION));
        assert!(run.trace.saw(branch::DEATH_OBSERVED));
    }
}

/// The megascale acceptance run: P ∈ {256, 1024, 4096} on the event
/// executor's virtual clock, three non-root ranks crashing one epoch apart
/// (thresholds staggered by ~one epoch's worth of operations, ≈ 4·P per
/// rank). Survivors must converge with ≥ 3 cascading epochs, byte-identical
/// payloads, reconciled traffic, and a bounded virtual recovery time.
fn megascale_cascade(p: usize) {
    let seed = battery_seed() ^ 0x3CA1E ^ p as u64;
    let cfg = RecoveryConfig {
        step_timeout: Duration::from_millis(60),
        max_epochs: 8, // ≥ 2·victims + 1 = 7: liveness guaranteed
        bounded_sendrecv: false,
    };
    let per_epoch = 4 * p as u64;
    let victims = [p - 2, p / 2, p / 3 + 1];
    let crashes = [(victims[0], 5), (victims[1], per_epoch + 5), (victims[2], 2 * per_epoch + 5)];
    let (results, traffic, elapsed, src) =
        event_cascade(p, 8 * p, 0, Algorithm::ScatterRingTuned, &crashes, cfg, seed);

    let spec =
        RecoverySpec { src: &src, root: 0, cfg, planned_victims: &victims, lossy_links: false };
    check_recovery_outcome(&spec, &results, &traffic, elapsed).unwrap();

    let mut max_epochs_seen = 0;
    let mut healed = 0;
    for run in &results {
        if let Ok(h) = &run.result {
            healed += 1;
            max_epochs_seen = max_epochs_seen.max(h.epochs);
        }
    }
    assert!(healed >= p - victims.len(), "only {healed} of {p} ranks healed");
    assert!(
        max_epochs_seen >= 3,
        "P={p}: expected a ≥3-epoch cascade, saw at most {max_epochs_seen}"
    );
}

#[test]
fn megascale_cascade_p256() {
    megascale_cascade(256);
}

#[test]
#[ignore = "release-mode CI phase: debug builds are too slow at P >= 1024"]
fn megascale_cascade_p1024() {
    megascale_cascade(1024);
}

#[test]
#[ignore = "release-mode CI phase: debug builds are too slow at P >= 1024"]
fn megascale_cascade_p4096() {
    megascale_cascade(4096);
}
