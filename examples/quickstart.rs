//! Quickstart: broadcast a buffer among 8 thread-ranks with the paper's
//! tuned algorithm, verify every rank got it, and show the traffic saving
//! over MPICH's native scatter-ring-allgather.
//!
//! Run with: `cargo run --release --example quickstart`

use bcast_core::traffic::bcast_volume;
use bcast_core::verify::pattern;
use bcast_core::{bcast_with, Algorithm};
use mpsim::{Communicator, ThreadWorld};

fn main() {
    let ranks = 8;
    let nbytes = 1 << 20; // 1 MiB: a "long message" by MPICH's thresholds
    let root = 0;
    let message = pattern(nbytes, 2024);

    for algorithm in [Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned] {
        let src = message.clone();
        let out = ThreadWorld::run(ranks, |comm| {
            let mut buf = if comm.rank() == root { src.clone() } else { vec![0u8; nbytes] };
            bcast_with(comm, &mut buf, root, algorithm).unwrap();
            assert_eq!(buf, src, "rank {} did not receive the message", comm.rank());
        });
        let model = bcast_volume(algorithm, nbytes, ranks);
        println!(
            "{algorithm:?}: {} messages, {:.2} MiB on the wire (model: {} msgs), wall {:?}",
            out.traffic.total_msgs(),
            out.traffic.total_bytes() as f64 / (1 << 20) as f64,
            model.msgs,
            out.elapsed,
        );
        assert_eq!(out.traffic.total_msgs(), model.msgs);
    }

    println!(
        "\nPaper §IV, P=8: the native ring moves 56 allgather messages, the tuned ring 44\n\
         (plus 7 binomial-scatter messages each) — every rank still ends with the full buffer."
    );
}
