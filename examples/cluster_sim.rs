//! Simulate the paper's Hornet-like Cray XC40 and compare all four MPICH
//! broadcast algorithms across the three message regimes — a condensed tour
//! of the evaluation section.
//!
//! Run with: `cargo run --release --example cluster_sim`

use bcast_core::verify::pattern;
use bcast_core::{bcast_with, select_algorithm, Algorithm, Thresholds};
use mpsim::Communicator;
use netsim::{presets, SimWorld};

fn simulate(np: usize, nbytes: usize, algorithm: Algorithm) -> f64 {
    let preset = presets::hornet();
    let model = preset.model_for(nbytes, np);
    let src = pattern(nbytes, 99);
    let out = SimWorld::run(model, preset.placement(), np, |comm| {
        let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
        comm.barrier().unwrap();
        bcast_with(comm, &mut buf, 0, algorithm).unwrap();
        assert_eq!(buf, src);
    });
    out.makespan_ns
}

fn main() {
    let th = Thresholds::default();
    println!("Simulated Hornet (24-core nodes, Aries-like network)\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>12}  MPICH picks",
        "np", "bytes", "binomial", "scat+rd", "scat+ring", "scat+tuned"
    );

    for &(np, nbytes) in &[
        (16usize, 4096usize), // smsg
        (16, 65536),          // mmsg pof2
        (24, 65536),          // mmsg npof2 (the paper's first target)
        (16, 1 << 20),        // lmsg pof2 (the paper's second target)
        (48, 1 << 20),        // lmsg, 2 nodes
        (129, 1 << 20),       // lmsg npof2, 6 nodes
    ] {
        let mut cells = Vec::new();
        for algorithm in [
            Algorithm::Binomial,
            Algorithm::ScatterRdAllgather,
            Algorithm::ScatterRingNative,
            Algorithm::ScatterRingTuned,
        ] {
            if algorithm == Algorithm::ScatterRdAllgather && !np.is_power_of_two() {
                cells.push("-".to_string()); // MPICH never runs RD on npof2
                continue;
            }
            let us = simulate(np, nbytes, algorithm) / 1000.0;
            cells.push(format!("{us:.1}us"));
        }
        let picked = select_algorithm(nbytes, np, &th, true);
        println!(
            "{np:>6} {nbytes:>10} {:>12} {:>12} {:>12} {:>12}  {picked:?}",
            cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!(
        "\nReading guide: binomial wins for small messages (latency-bound);\n\
         the scatter-based algorithms win for large ones (bandwidth-bound);\n\
         the tuned ring never does worse than the native ring it replaces."
    );
}
