//! 1-D heat-diffusion mini-app: halo exchange between neighbouring ranks
//! each step, plus a global `allreduce` for the convergence criterion —
//! the canonical HPC communication mix the collectives substrate exists to
//! serve. Runs on the simulated cluster (communication *and* modelled
//! compute time), and the final temperature field is verified against a
//! serial solver.
//!
//! Run with: `cargo run --release --example halo_exchange`

use bcast_core::reduce::allreduce_rd;
use mpsim::{Communicator, Tag};
use netsim::{presets, SimComm, SimWorld};

const CELLS: usize = 480; // global domain
const RANKS: usize = 12;
const STEPS: usize = 200;
const ALPHA: f64 = 0.25; // diffusion coefficient (stable for dt=dx=1)
const FLOPS_PER_NS: f64 = 4.0;

fn initial(i: usize) -> f64 {
    // hot spike in the middle, cold edges
    if (CELLS / 2 - 20..CELLS / 2 + 20).contains(&i) {
        100.0
    } else {
        0.0
    }
}

fn serial() -> Vec<f64> {
    let mut t: Vec<f64> = (0..CELLS).map(initial).collect();
    let mut next = t.clone();
    for _ in 0..STEPS {
        for i in 0..CELLS {
            let left = if i == 0 { t[0] } else { t[i - 1] };
            let right = if i + 1 == CELLS { t[CELLS - 1] } else { t[i + 1] };
            next[i] = t[i] + ALPHA * (left - 2.0 * t[i] + right);
        }
        std::mem::swap(&mut t, &mut next);
    }
    t
}

fn distributed() -> (Vec<f64>, f64, usize) {
    let preset = presets::hornet();
    let local = CELLS / RANKS;
    assert_eq!(CELLS % RANKS, 0);
    let model = preset.model_for(local * 8, RANKS);
    let out = SimWorld::run(model, preset.placement(), RANKS, |comm: &SimComm| {
        let rank = comm.rank();
        let lo = rank * local;
        // local field with one ghost cell on each side
        let mut t = vec![0.0f64; local + 2];
        for i in 0..local {
            t[i + 1] = initial(lo + i);
        }
        let mut next = t.clone();
        let mut steps_done = 0usize;
        for _ in 0..STEPS {
            // halo exchange with neighbours (boundary ranks mirror themselves)
            let mut bytes = [0u8; 8];
            if rank > 0 {
                comm.sendrecv(&t[1].to_le_bytes(), rank - 1, Tag(1), &mut bytes, rank - 1, Tag(2))
                    .unwrap();
                t[0] = f64::from_le_bytes(bytes);
            } else {
                t[0] = t[1];
            }
            if rank + 1 < RANKS {
                comm.sendrecv(
                    &t[local].to_le_bytes(),
                    rank + 1,
                    Tag(2),
                    &mut bytes,
                    rank + 1,
                    Tag(1),
                )
                .unwrap();
                t[local + 1] = f64::from_le_bytes(bytes);
            } else {
                t[local + 1] = t[local];
            }
            // stencil update + modelled compute cost
            let mut local_delta: f64 = 0.0;
            for i in 1..=local {
                next[i] = t[i] + ALPHA * (t[i - 1] - 2.0 * t[i] + t[i + 1]);
                local_delta = local_delta.max((next[i] - t[i]).abs());
            }
            comm.compute(5.0 * local as f64 / FLOPS_PER_NS);
            std::mem::swap(&mut t, &mut next);
            steps_done += 1;

            // global convergence check (max |Δ| over the whole domain)
            let mut delta = [local_delta];
            allreduce_rd(comm, &mut delta, f64::max).unwrap();
            if delta[0] < 1e-4 {
                break;
            }
        }
        (t[1..=local].to_vec(), comm.vtime(), steps_done)
    });
    let mut field = Vec::with_capacity(CELLS);
    for (chunk, _, _) in &out.results {
        field.extend_from_slice(chunk);
    }
    let steps = out.results[0].2;
    (field, out.makespan_ns, steps)
}

fn main() {
    println!("1-D heat diffusion: {CELLS} cells over {RANKS} simulated ranks, {STEPS} max steps");
    let (field, ns, steps) = distributed();
    let reference = serial();
    // The distributed solver must match the serial one bit-for-bit as long
    // as both ran the same number of steps.
    let serial_at_steps = if steps == STEPS {
        reference
    } else {
        // convergence fired early — recompute serially for `steps`
        let mut t: Vec<f64> = (0..CELLS).map(initial).collect();
        let mut next = t.clone();
        for _ in 0..steps {
            for i in 0..CELLS {
                let left = if i == 0 { t[0] } else { t[i - 1] };
                let right = if i + 1 == CELLS { t[CELLS - 1] } else { t[i + 1] };
                next[i] = t[i] + ALPHA * (left - 2.0 * t[i] + right);
            }
            std::mem::swap(&mut t, &mut next);
        }
        t
    };
    assert_eq!(field, serial_at_steps, "distributed and serial solvers diverged");
    let peak = field.iter().copied().fold(f64::MIN, f64::max);
    println!("ran {steps} steps in {:.1} simulated us; peak temperature {peak:.3}", ns / 1000.0);
    println!("field verified against the serial solver ✔");
}
