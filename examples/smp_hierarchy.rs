//! Multi-core-aware broadcast (paper §I): split the world into node-local
//! groups with `SubComm::split` (the `MPI_Comm_split` idiom), run the
//! three-phase SMP broadcast, and compare its inter-node traffic against the
//! flat scatter-ring broadcasts on a simulated two-level cluster.
//!
//! Run with: `cargo run --release --example smp_hierarchy`

use bcast_core::smp::{bcast_smp, NodeMap};
use bcast_core::verify::pattern;
use bcast_core::Algorithm;
use mpsim::{Communicator, SubComm};
use netsim::{presets, Level, SimWorld};

fn main() {
    let preset = presets::hornet();
    let np = 72; // 3 nodes × 24 ranks
    let nbytes = 1 << 16;
    let placement = preset.placement();
    let nodes = NodeMap::new(preset.cores_per_node());
    let src = pattern(nbytes, 7);

    println!(
        "Simulated {}: np={np}, {} nodes, message {} KiB\n",
        preset.name,
        placement.node_count(np),
        nbytes >> 10
    );

    // Demonstrate the split API itself: group ranks by node, order by rank.
    let out = SimWorld::run(preset.model_for(nbytes, np), placement, np, |comm| {
        let color = Some(comm.placement().node_of(comm.rank()) as u64);
        let node_comm =
            SubComm::split(comm, color, comm.rank() as i64).expect("every rank belongs to a node");
        // within the node group, local rank 0 is the node leader
        (node_comm.size(), node_comm.rank(), node_comm.to_parent(0))
    });
    let (gsize, _, leader) = out.results[30];
    println!("rank 30 sits in a node group of {gsize} ranks led by global rank {leader}\n");

    // Compare flat vs SMP-aware broadcast traffic and simulated time.
    println!("{:<28} {:>12} {:>14} {:>14}", "broadcast", "time (us)", "intra msgs", "inter msgs");
    for (name, smp, algorithm) in [
        ("flat native ring", false, Algorithm::ScatterRingNative),
        ("flat tuned ring", false, Algorithm::ScatterRingTuned),
        ("SMP + native ring", true, Algorithm::ScatterRingNative),
        ("SMP + tuned ring", true, Algorithm::ScatterRingTuned),
    ] {
        let out = SimWorld::run(preset.model_for(nbytes, np), placement, np, |comm| {
            let mut buf = if comm.rank() == 0 { src.clone() } else { vec![0u8; nbytes] };
            if smp {
                bcast_smp(comm, &mut buf, 0, &nodes, algorithm).unwrap();
            } else {
                bcast_core::bcast_with(comm, &mut buf, 0, algorithm).unwrap();
            }
            assert_eq!(buf, src);
        });
        let (intra, inter, _, _) =
            out.traffic.split_msgs(|a, b| placement.level(a, b) == Level::IntraNode);
        println!("{name:<28} {:>12.1} {intra:>14} {inter:>14}", out.makespan_ns / 1000.0);
    }

    println!(
        "\nThe SMP scheme keeps the ring among node leaders only: inter-node\n\
         messages collapse from hundreds to a handful, and the paper's tuned\n\
         ring slots in as the leader-level algorithm."
    );
}
