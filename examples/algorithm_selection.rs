//! Show MPICH3's broadcast algorithm-selection map over (message size,
//! process count), with and without the paper's tuned ring spliced in —
//! exactly the dispatch logic of `MPIR_Bcast` with the thresholds quoted in
//! the paper's Section V (12288 and 524288 bytes, 8 processes minimum).
//!
//! Run with: `cargo run --release --example algorithm_selection`

use bcast_core::{select_algorithm, Algorithm, Regime, Thresholds};

fn glyph(a: Algorithm) -> &'static str {
    match a {
        Algorithm::Binomial => "B",
        Algorithm::ScatterRdAllgather => "R",
        Algorithm::ScatterRingNative => "N",
        Algorithm::ScatterRingTuned => "T",
    }
}

fn main() {
    let th = Thresholds::default();
    let sizes: Vec<usize> = (10..=23).map(|e| 1usize << e).collect();
    let nps = [4usize, 8, 9, 16, 17, 33, 64, 65, 128, 129, 256];

    for tuned in [false, true] {
        println!(
            "\nSelection map ({}): B=binomial R=scatter+recursive-doubling \
             N=native ring T=tuned ring",
            if tuned { "patched MPICH, tuned ring enabled" } else { "stock MPICH3" }
        );
        print!("{:>10}", "bytes\\np");
        for np in nps {
            print!("{np:>5}");
        }
        println!();
        for &nbytes in &sizes {
            print!("{nbytes:>10}");
            for &np in &nps {
                print!("{:>5}", glyph(select_algorithm(nbytes, np, &th, tuned)));
            }
            let regime = match th.regime(nbytes) {
                Regime::Short => "short",
                Regime::Medium => "medium",
                Regime::Long => "long",
            };
            println!("  ({regime})");
        }
    }

    println!(
        "\nThe paper's optimization replaces N with T everywhere it appears:\n\
         long messages (any np) and medium messages with non-power-of-two np."
    );
}
