//! The paper's motivating workload (Section I cites HPL / basic linear
//! algebra): a distributed matrix multiply whose inner loop broadcasts
//! column panels of `A` to every rank — so broadcast bandwidth directly
//! bounds GEMM scalability.
//!
//! `C = A · B` with `B` and `C` distributed by column blocks over the ranks
//! of a simulated Hornet-like cluster. For each panel of `A` the owner
//! broadcasts it (native vs tuned scatter-ring-allgather), then every rank
//! updates its local block; local compute time is modelled via
//! `SimComm::compute`. The result is verified against a serial multiply.
//!
//! Run with: `cargo run --release --example matmul`

use bcast_core::{bcast_with, Algorithm};
use mpsim::Communicator;
use netsim::{presets, SimComm, SimWorld};

const N: usize = 192; // matrix dimension
const PANEL: usize = 32; // k-panel width
const RANKS: usize = 12;
const FLOPS_PER_NS: f64 = 8.0; // modelled per-core GEMM rate

fn a_entry(i: usize, k: usize) -> f64 {
    ((i * 31 + k * 17) % 13) as f64 - 6.0
}

fn b_entry(k: usize, j: usize) -> f64 {
    ((k * 7 + j * 3) % 11) as f64 - 5.0
}

/// Column range owned by `rank`.
fn cols_of(rank: usize) -> std::ops::Range<usize> {
    let per = N.div_ceil(RANKS);
    let lo = (rank * per).min(N);
    let hi = ((rank + 1) * per).min(N);
    lo..hi
}

fn run(algorithm: Algorithm) -> (f64, Vec<Vec<f64>>) {
    let preset = presets::hornet();
    let model = preset.model_for(N * PANEL * 8, RANKS);
    let out = SimWorld::run(model, preset.placement(), RANKS, |comm: &SimComm| {
        let cols = cols_of(comm.rank());
        let lc = cols.len();
        // local B block (N × lc) and C block, column-major by local column
        let b_local: Vec<f64> =
            cols.clone().flat_map(|j| (0..N).map(move |k| b_entry(k, j))).collect();
        let mut c_local = vec![0.0f64; N * lc];
        let mut panel = vec![0u8; N * PANEL * 8];

        let mut kp = 0;
        while kp < N {
            let kb = PANEL.min(N - kp);
            // Root materializes the panel A[:, kp..kp+kb], row-major by panel col.
            if comm.rank() == 0 {
                for (c, chunk) in panel.chunks_exact_mut(8).enumerate().take(N * kb) {
                    let i = c / kb;
                    let k = kp + c % kb;
                    chunk.copy_from_slice(&a_entry(i, k).to_le_bytes());
                }
            }
            // Broadcast the panel to every rank.
            bcast_with(comm, &mut panel[..N * kb * 8], 0, algorithm).unwrap();
            // Local update: C_local += panel · B_local[kp..kp+kb, :]
            for (jl, cj) in c_local.chunks_exact_mut(N).enumerate() {
                for (kk, &bkj) in b_local[jl * N + kp..jl * N + kp + kb].iter().enumerate() {
                    for (i, cij) in cj.iter_mut().enumerate() {
                        let a = f64::from_le_bytes(
                            panel[(i * kb + kk) * 8..(i * kb + kk) * 8 + 8].try_into().unwrap(),
                        );
                        *cij += a * bkj;
                    }
                }
            }
            // Model the GEMM cost instead of charging wall time.
            comm.compute(2.0 * (N * kb * lc) as f64 / FLOPS_PER_NS);
            kp += kb;
        }
        c_local
    });
    (out.makespan_ns, out.results)
}

fn main() {
    println!("Distributed GEMM {N}x{N}, {RANKS} ranks, panel {PANEL} (simulated Hornet)");
    let mut reference: Option<Vec<Vec<f64>>> = None;
    let mut times = Vec::new();
    for algorithm in [Algorithm::ScatterRingNative, Algorithm::ScatterRingTuned] {
        let (ns, c) = run(algorithm);
        times.push(ns);
        println!("{algorithm:?}: total {:.1} us (comms + modelled compute)", ns / 1000.0);
        if let Some(r) = &reference {
            assert_eq!(r, &c, "algorithms disagree on the product");
        } else {
            reference = Some(c);
        }
    }

    // Verify against a serial multiply.
    let c = reference.unwrap();
    for (rank, c_local) in c.iter().enumerate() {
        let cols = cols_of(rank);
        for (jl, j) in cols.enumerate() {
            for i in 0..N {
                let expect: f64 = (0..N).map(|k| a_entry(i, k) * b_entry(k, j)).sum();
                assert_eq!(c_local[jl * N + i], expect, "C[{i},{j}] wrong");
            }
        }
    }
    println!("result verified against serial multiply ✔");
    println!(
        "tuned broadcast saves {:.1}% of end-to-end time on this workload",
        (1.0 - times[1] / times[0]) * 100.0
    );
}
