//! Transfer-count analysis across process counts: the paper's Section IV
//! arithmetic, from the analytic model and cross-checked against the
//! instrumented runtime.
//!
//! Run with: `cargo run --release --example traffic_analysis`

use bcast_core::owned_chunks;
use bcast_core::traffic::{native_ring_msgs, ring_saving_msgs, tuned_ring_msgs};
use bcast_core::verify::run_threaded;
use bcast_core::Algorithm;

fn main() {
    println!("Ring-allgather transfers: native P(P-1) vs tuned P^2 - sum(own)");
    println!("{:>5} {:>10} {:>10} {:>8} {:>8}", "P", "native", "tuned", "saved", "saved%");
    for p in [2usize, 4, 8, 10, 16, 32, 64, 128, 256, 512, 1024] {
        let native = native_ring_msgs(p);
        let tuned = tuned_ring_msgs(p);
        let saved = ring_saving_msgs(p);
        println!(
            "{p:>5} {native:>10} {tuned:>10} {saved:>8} {:>7.1}%",
            100.0 * saved as f64 / native as f64
        );
    }

    println!("\nScatter-tree ownership for the paper's worked examples:");
    for p in [8usize, 10] {
        let owns: Vec<usize> = (0..p).map(|rel| owned_chunks(rel, p)).collect();
        println!("P={p}: own = {owns:?} (root keeps all, subtree roots keep their span)");
    }

    println!("\nCross-check against the instrumented runtime (P=10, 100 bytes):");
    let native = run_threaded(Algorithm::ScatterRingNative, 10, 100, 0);
    let tuned = run_threaded(Algorithm::ScatterRingTuned, 10, 100, 0);
    assert!(native.correct && tuned.correct);
    println!(
        "measured: native {} msgs (9 scatter + 90 ring), tuned {} msgs (9 scatter + 75 ring)",
        native.traffic.total_msgs(),
        tuned.traffic.total_msgs()
    );
    assert_eq!(native.traffic.total_msgs(), 99);
    assert_eq!(tuned.traffic.total_msgs(), 84);
    println!("paper §IV: 90 -> 75 for P=10 (reduced by 15)  ✔");
}
